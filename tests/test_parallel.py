"""Tests for the sharded multi-process execution engine (``repro.parallel``)."""

import json
import multiprocessing

import numpy as np
import pytest

from repro.experiments.zoo import ZOO
from repro.parallel.locks import FileLock, LockUnavailable, atomic_write_json, atomic_write_text
from repro.parallel.sharding import (
    attack_shard_size,
    cell_seed,
    cell_seed_sequence,
    n_shards,
    resolve_jobs,
    shard_bounds,
)
from repro.pipeline import (
    NONDETERMINISTIC_RESULT_FIELDS,
    ExperimentSpec,
    Runner,
    get_cell_kind,
)

#: cheap catalog experiments: no zoo model, no attack -- safe on a cold cache
CHEAP_EXPERIMENTS = ["fig04_approx_convolution", "table07_energy_delay"]

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def make_runner(tmp_path, tag="cells", **kwargs):
    kwargs.setdefault("cache_dir", tmp_path / tag)
    return Runner(fast=True, **kwargs)


def deterministic_json(result):
    payload = result.to_json()
    for field in NONDETERMINISTIC_RESULT_FIELDS:
        payload.pop(field)
    return json.dumps(payload, sort_keys=True)


# ---------------------------------------------------------------- sharding
def test_shard_math():
    assert n_shards(0, 4) == 1  # empty budgets still produce one (empty) shard
    assert n_shards(6, 4) == 2
    assert n_shards(8, 4) == 2
    assert n_shards(9, 4) == 3
    assert shard_bounds(6, 4, 0) == (0, 4)
    assert shard_bounds(6, 4, 1) == (4, 6)
    assert shard_bounds(6, 4, 2) == (6, 6)  # beyond availability: empty
    # shards tile the sample range exactly, in order
    covered = [shard_bounds(10, 3, i) for i in range(n_shards(10, 3))]
    assert covered == [(0, 3), (3, 6), (6, 9), (9, 10)]


def test_shard_size_policy_env(monkeypatch):
    monkeypatch.delenv("REPRO_ATTACK_SHARD_SIZE", raising=False)
    default = attack_shard_size()
    assert default >= 1
    monkeypatch.setenv("REPRO_ATTACK_SHARD_SIZE", "16")
    assert attack_shard_size() == 16
    assert Runner(fast=True).shard_size == 16
    monkeypatch.setenv("REPRO_ATTACK_SHARD_SIZE", "bogus")
    assert attack_shard_size() == default
    # an explicit Runner argument beats the policy
    assert Runner(fast=True, shard_size=3).shard_size == 3


def test_cell_seeds_are_content_derived_and_spawn_compatible():
    payload = {"attack": "pgd", "n_samples": 8}
    # the cell-level seed is shard-free: one entropy per cell, from which
    # attacks spawn per-example streams keyed by global victim index
    assert cell_seed(payload) == cell_seed(dict(payload))  # pure function
    assert cell_seed(payload) != cell_seed({**payload, "n_samples": 12})
    # per-example spawn_key construction matches SeedSequence.spawn children
    root = cell_seed_sequence(payload)
    spawned = np.random.SeedSequence(entropy=root.entropy).spawn(3)
    for i in range(3):
        child = np.random.SeedSequence(entropy=root.entropy, spawn_key=(i,))
        assert spawned[i].generate_state(4).tolist() == child.generate_state(4).tolist()


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs("3") == 3
    assert resolve_jobs(0) >= 1
    assert resolve_jobs("auto") >= 1
    assert resolve_jobs(None) >= 1


# ------------------------------------------------------------------- locks
def test_file_lock_mutual_exclusion(tmp_path):
    lock_path = tmp_path / "cell.lock"
    first = FileLock(lock_path).acquire()
    try:
        with pytest.raises(LockUnavailable):
            FileLock(lock_path).acquire(blocking=False)
    finally:
        first.release()
    # released: a second holder can now take it
    second = FileLock(lock_path).acquire(blocking=False)
    assert second.held
    second.release()
    assert not second.held


def test_atomic_writes_publish_complete_files(tmp_path):
    target = tmp_path / "deep" / "artifact.json"
    atomic_write_json(target, {"value": 1}, sort_keys=True)
    assert json.loads(target.read_text()) == {"value": 1}
    atomic_write_text(target, "replaced")
    assert target.read_text() == "replaced"
    # no temporary droppings left behind
    assert [p.name for p in target.parent.iterdir()] == ["artifact.json"]


# ------------------------------------------------- determinism across jobs
def test_cheap_experiments_identical_across_jobs(tmp_path):
    serial = make_runner(tmp_path, "serial", jobs=1).run_many(CHEAP_EXPERIMENTS)
    parallel = make_runner(tmp_path, "parallel", jobs=3).run_many(CHEAP_EXPERIMENTS)
    for a, b in zip(serial, parallel):
        assert deterministic_json(a) == deterministic_json(b)


def test_prewarmed_cache_yields_zero_misses_under_jobs(tmp_path):
    make_runner(tmp_path, jobs=1).run_many(CHEAP_EXPERIMENTS)  # warm the cell cache
    runner = make_runner(tmp_path, jobs=3)
    results = runner.run_many(CHEAP_EXPERIMENTS)
    assert runner.cache_misses == 0
    assert runner.cache_hits == len(runner.telemetry.events)
    assert all(result.cache_misses == 0 for result in results)


# ------------------------------------------- sharded attack-evaluation cells
@pytest.fixture()
def tiny_zoo_entry(tiny_model, digit_split):
    """A zoo entry serving the session's tiny trained model (no disk cache)."""
    name = "parallel_test_zoo"
    ZOO.register(name, lambda fast=False: (tiny_model, digit_split), overwrite=True)
    yield name
    ZOO.unregister(name)


def tiny_whitebox_spec(zoo_name):
    return ExperimentSpec(
        name="tiny_whitebox",
        kind="whitebox",
        model=zoo_name,
        variants=("exact",),
        attacks=(("PGD", "pgd", {"epsilon": 0.1, "steps": 5}),),
        n_samples=6,
        params={"columns": ("success", "l2")},
    )


def test_sharded_cell_merge_is_order_independent(tmp_path, tiny_zoo_entry):
    runner = make_runner(tmp_path, jobs=1, shard_size=2)
    payload = {
        "model": tiny_zoo_entry,
        "attack": "pgd",
        "params": {"epsilon": 0.1, "steps": 5},
        "n_samples": 6,
        "victim": "exact",
    }
    kind = get_cell_kind("whitebox")
    assert kind.n_shards(runner, payload) == 3
    forward = [kind.compute_shard(runner, payload, i) for i in range(3)]
    backward = [kind.compute_shard(runner, payload, i) for i in (2, 1, 0)][::-1]
    assert forward == backward  # shard results don't depend on execution order
    merged = kind.merge(payload, forward)
    assert merged["n_samples"] == 6
    # per-example RNG streams: shards see different victims AND different
    # noise, so their traces differ
    assert forward[0] != forward[1]


def test_cell_values_invariant_to_shard_size(tmp_path, tiny_zoo_entry):
    """The shard size is execution tuning: every layout merges identically."""
    payload = {
        "model": tiny_zoo_entry,
        "attack": "pgd",
        "params": {"epsilon": 0.1, "steps": 5},
        "n_samples": 6,
        "victim": "exact",
    }
    kind = get_cell_kind("whitebox")
    values = []
    for shard_size in (1, 2, 3, 6):
        runner = make_runner(tmp_path, f"shards{shard_size}", jobs=1, shard_size=shard_size)
        assert kind.n_shards(runner, payload) == -(-6 // shard_size)
        shards = [
            kind.compute_shard(runner, payload, i)
            for i in range(kind.n_shards(runner, payload))
        ]
        values.append(json.dumps(kind.merge(payload, shards), sort_keys=True))
    assert len(set(values)) == 1


def test_whole_experiment_invariant_to_shard_size(tmp_path, tiny_zoo_entry):
    spec = tiny_whitebox_spec(tiny_zoo_entry)
    small = make_runner(tmp_path, "small", jobs=1, shard_size=2).run(spec)
    large = make_runner(tmp_path, "large", jobs=1, shard_size=6).run(spec)
    assert deterministic_json(small) == deterministic_json(large)


@pytest.mark.skipif(not HAS_FORK, reason="pool test needs fork to inherit the test zoo entry")
def test_attack_experiment_identical_across_jobs(tmp_path, tiny_zoo_entry):
    spec = tiny_whitebox_spec(tiny_zoo_entry)
    serial = make_runner(tmp_path, "serial", jobs=1, shard_size=2).run(spec)
    pooled = make_runner(tmp_path, "pooled", jobs=3, shard_size=2).run(spec)
    assert serial.cache_misses == 1 and pooled.cache_misses == 1
    assert deterministic_json(serial) == deterministic_json(pooled)
    # and the pooled artifact cache is interchangeable with the serial one
    rerun = make_runner(tmp_path, "pooled", jobs=1, shard_size=2).run(spec)
    assert rerun.cache_hits == 1 and rerun.cache_misses == 0
    assert deterministic_json(rerun) == deterministic_json(serial)


# ------------------------------------------------------ counters & telemetry
def test_counters_reset_between_runs(tmp_path):
    runner = make_runner(tmp_path, jobs=1)
    first = runner.run("table07_energy_delay")
    assert (runner.cache_hits, runner.cache_misses) == (0, 1)
    second = runner.run("table07_energy_delay")
    # per-run counters: the second run is all hits and misses reset to zero
    assert (runner.cache_hits, runner.cache_misses) == (1, 0)
    assert first.cache_misses == 1 and second.cache_hits == 1


def test_results_embed_cell_telemetry(tmp_path):
    result = make_runner(tmp_path, jobs=1).run("table07_energy_delay")
    telemetry = result.telemetry
    assert telemetry["jobs"] == 1
    assert len(telemetry["cells"]) == 1
    event = telemetry["cells"][0]
    assert event["kind"] == "energy"
    assert event["status"] == "computed"
    assert event["experiment"] == "table07_energy_delay"
    assert "telemetry" in result.to_json()


def test_shared_cells_are_computed_once_per_run(tmp_path, tiny_zoo_entry):
    # two sibling experiments over the same white-box grid (the fig08_09 /
    # fig10_11 shape): the shared cell is computed once, owned by the first
    spec = tiny_whitebox_spec(tiny_zoo_entry)
    sibling = spec.replace(
        name="tiny_whitebox_sibling", params={"columns": ("mse", "psnr")}
    )
    runner = make_runner(tmp_path, jobs=1, shard_size=2)
    first, second = runner.run_many([spec, sibling])
    assert runner.telemetry.cells_total == 1
    assert (first.cache_hits, first.cache_misses) == (0, 1)
    assert (second.cache_hits, second.cache_misses) == (1, 0)
    assert first.metrics == second.metrics


def test_legacy_closure_cell_api_still_works(tmp_path):
    runner = make_runner(tmp_path, jobs=1)
    calls = []

    def compute():
        calls.append(1)
        return {"value": 42}

    payload = {"anything": 1}
    assert runner.cell("legacy_kind", payload, compute) == {"value": 42}
    assert runner.cell("legacy_kind", payload, compute) == {"value": 42}
    assert len(calls) == 1  # second call served from the artifact cache
    assert runner.cache_hits == 1 and runner.cache_misses == 1
