"""Tests for the DA defense wrapper, confidence analysis and threat-model harnesses."""

import numpy as np
import pytest

from repro.arith.fpm import Bfloat16Multiplier
from repro.attacks import FGSM, PGD
from repro.attacks.base import Classifier
from repro.core.confidence import classification_confidence, compare_confidence
from repro.core.defense import DefensiveApproximation
from repro.core.evaluation import (
    evaluate_black_box,
    evaluate_transferability,
    evaluate_white_box,
    select_correctly_classified,
)
from repro.core.results import format_percentage, format_table
from repro.core.substitute import train_substitute


# ----------------------------------------------------------------- defense
def test_defense_builds_approximate_model_sharing_weights(tiny_model):
    defense = DefensiveApproximation(tiny_model)
    assert defense.approximate_model is not tiny_model
    assert defense.approximate_model.layers[0].weight is tiny_model.layers[0].weight


def test_defense_accuracy_report(tiny_model, digit_split):
    defense = DefensiveApproximation(tiny_model)
    report = defense.accuracy_report(digit_split.test.images[:60], digit_split.test.labels[:60])
    assert report.exact_accuracy > 0.7
    assert report.approximate_accuracy > 0.5
    assert report.accuracy_drop == pytest.approx(
        report.exact_accuracy - report.approximate_accuracy
    )


def test_defense_with_bfloat16_multiplier_tracks_exact(tiny_model, digit_split):
    defense = DefensiveApproximation(tiny_model, multiplier=Bfloat16Multiplier())
    x = digit_split.test.images[:20]
    np.testing.assert_array_equal(defense.predict(x), tiny_model.predict(x))


def test_defense_classifier_facades(tiny_model):
    defense = DefensiveApproximation(tiny_model)
    assert isinstance(defense.exact_classifier(), Classifier)
    assert isinstance(defense.defended_classifier(), Classifier)


# -------------------------------------------------------------- confidence
def test_classification_confidence_range(tiny_model, digit_split):
    conf = classification_confidence(
        tiny_model, digit_split.test.images[:40], digit_split.test.labels[:40]
    )
    assert conf.shape == (40,)
    assert np.all(conf >= -1.0) and np.all(conf <= 1.0)


def test_da_confidence_enhancement(tiny_model, tiny_approx_model, digit_split):
    """Figure 12: on samples both classifiers get right, the approximate
    classifier is at least as confident as the exact one."""
    x = digit_split.test.images[:150]
    y = digit_split.test.labels[:150]
    both_correct = np.flatnonzero((tiny_model.predict(x) == y) & (tiny_approx_model.predict(x) == y))
    comparison = compare_confidence(tiny_model, tiny_approx_model, x[both_correct], y[both_correct])
    exact_mean, approx_mean = comparison.mean_confidence()
    assert approx_mean > exact_mean - 0.05
    cdf = comparison.cumulative_distribution(n_points=21)
    assert cdf["thresholds"].shape == (21,)
    assert cdf["exact_cdf"][-1] == pytest.approx(1.0)


# ------------------------------------------------------------- evaluation
def test_select_correctly_classified(tiny_classifier, digit_split):
    indices = select_correctly_classified(
        tiny_classifier, digit_split.test.images[:50], digit_split.test.labels[:50], max_samples=10
    )
    assert len(indices) <= 10
    preds = tiny_classifier.predict(digit_split.test.images[:50][indices])
    np.testing.assert_array_equal(preds, digit_split.test.labels[:50][indices])


def test_transferability_da_blunts_fgsm(tiny_model, tiny_approx_model, digit_split):
    """The core claim (Tables 2/3): attacks crafted on the exact model transfer
    poorly to the DA model."""
    source = Classifier(tiny_model)
    targets = {"exact": Classifier(tiny_model), "approximate": Classifier(tiny_approx_model)}
    evaluation = evaluate_transferability(
        source,
        targets,
        FGSM(epsilon=0.2),
        digit_split.test.images,
        digit_split.test.labels,
        max_samples=12,
    )
    assert evaluation.source_success_rate > 0.4
    # replaying against the source itself succeeds by construction
    assert evaluation.target_success_rates["exact"] == pytest.approx(1.0)
    assert (
        evaluation.target_success_rates["approximate"]
        <= evaluation.target_success_rates["exact"]
    )
    assert evaluation.target_robustness["approximate"] == pytest.approx(
        1.0 - evaluation.target_success_rates["approximate"]
    )


def test_transferability_summary_row_format(tiny_model, tiny_approx_model, digit_split):
    source = Classifier(tiny_model)
    targets = {"da": Classifier(tiny_approx_model)}
    evaluation = evaluate_transferability(
        source, targets, FGSM(epsilon=0.2), digit_split.test.images, digit_split.test.labels,
        max_samples=6,
    )
    row = evaluation.summary_row(["da"])
    assert row[0] == "fgsm"
    assert row[1].endswith("%")


def test_black_box_evaluation(tiny_model, tiny_approx_model, digit_split):
    victim = Classifier(tiny_approx_model)
    substitute = Classifier(tiny_model)  # stand-in substitute: the exact twin
    evaluation = evaluate_black_box(
        victim,
        substitute,
        FGSM(epsilon=0.2),
        digit_split.test.images,
        digit_split.test.labels,
        max_samples=10,
    )
    assert 0.0 <= evaluation.substitute_success_rate <= 1.0
    assert 0.0 <= evaluation.victim_success_rate <= 1.0
    assert evaluation.victim_robustness == pytest.approx(1.0 - evaluation.victim_success_rate)


def test_white_box_evaluation_reports_perturbation_stats(tiny_classifier, digit_split):
    evaluation = evaluate_white_box(
        tiny_classifier,
        PGD(epsilon=0.2, steps=10),
        digit_split.test.images,
        digit_split.test.labels,
        max_samples=8,
        victim_name="exact",
    )
    assert evaluation.victim_name == "exact"
    assert evaluation.n_samples <= 8
    if evaluation.success_rate > 0:
        assert evaluation.mean_l2 > 0
        assert evaluation.mean_psnr > 0
        assert evaluation.mean_mse > 0


def test_substitute_training_learns_victim_behaviour(tiny_model, digit_split):
    victim = Classifier(tiny_model)
    substitute = train_substitute(
        victim.predict,
        digit_split.train.images[:600],
        epochs=15,
        augmentation_rounds=1,
        seed=1,
    )
    x = digit_split.test.images[:80]
    agreement = np.mean(substitute.predict(x) == tiny_model.predict(x))
    assert agreement > 0.4


# ----------------------------------------------------------------- results
def test_format_table_alignment():
    table = format_table(["a", "b"], [["x", 1.5], ["yy", 2]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "1.500" in table


def test_format_percentage():
    assert format_percentage(0.123) == "12%"
