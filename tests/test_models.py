"""Tests for the model zoo builders."""

import numpy as np
import pytest

from repro.nn.models import build_alexnet, build_dq_cnn, build_lenet5


def test_lenet5_forward_shape():
    model = build_lenet5((1, 16, 16), num_classes=10)
    x = np.random.default_rng(0).uniform(0, 1, size=(3, 1, 16, 16)).astype(np.float32)
    assert model.predict_logits(x).shape == (3, 10)


def test_lenet5_layer_structure():
    model = build_lenet5((1, 16, 16))
    names = [type(l).__name__ for l in model.layers]
    assert names.count("Conv2d") == 2
    assert names.count("MaxPool2d") == 2
    assert names.count("Linear") == 3


def test_lenet5_rejects_too_small_inputs():
    with pytest.raises(ValueError):
        build_lenet5((1, 6, 6), kernel_size=5)


def test_lenet5_is_deterministic_given_seed():
    a = build_lenet5((1, 14, 14), seed=5)
    b = build_lenet5((1, 14, 14), seed=5)
    x = np.random.default_rng(1).uniform(0, 1, size=(2, 1, 14, 14)).astype(np.float32)
    np.testing.assert_allclose(a.predict_logits(x), b.predict_logits(x), rtol=1e-6)


def test_alexnet_forward_shape_and_structure():
    model = build_alexnet((3, 32, 32), num_classes=10)
    names = [type(l).__name__ for l in model.layers]
    assert names.count("Conv2d") == 5
    assert names.count("MaxPool2d") == 3
    assert names.count("Linear") == 3
    x = np.random.default_rng(2).uniform(0, 1, size=(2, 3, 32, 32)).astype(np.float32)
    assert model.predict_logits(x).shape == (2, 10)


def test_alexnet_rejects_too_small_inputs():
    with pytest.raises(ValueError):
        build_alexnet((3, 6, 6))


def test_dq_cnn_full_mode_structure():
    model = build_dq_cnn((3, 16, 16), bits=4, mode="full")
    names = [type(l).__name__ for l in model.layers]
    assert "QuantConv2d" in names
    assert "QuantReLU" in names
    assert "BatchNorm2d" in names
    x = np.random.default_rng(3).uniform(0, 1, size=(2, 3, 16, 16)).astype(np.float32)
    assert model.predict_logits(x).shape == (2, 10)


def test_dq_cnn_weight_mode_has_exact_activations():
    model = build_dq_cnn((3, 16, 16), bits=4, mode="weight")
    names = [type(l).__name__ for l in model.layers]
    assert "QuantConv2d" in names
    assert "QuantReLU" not in names
    assert "ReLU" in names


def test_dq_cnn_float_mode_has_no_quantisation():
    model = build_dq_cnn((3, 16, 16), mode="float")
    names = [type(l).__name__ for l in model.layers]
    assert "QuantConv2d" not in names
    assert "QuantLinear" not in names


def test_dq_cnn_invalid_mode():
    with pytest.raises(ValueError):
        build_dq_cnn((3, 16, 16), mode="bogus")


def test_model_parameter_counts_positive():
    for model in (
        build_lenet5((1, 16, 16)),
        build_alexnet((3, 16, 16)),
        build_dq_cnn((3, 16, 16)),
    ):
        assert model.num_parameters() > 1000
