"""Figure 12: cumulative distribution of classification confidence.

Confidence = softmax score of the true class minus the runner-up score,
measured on a class-balanced set of clean samples.  The paper reports that
74.5 % of DA-classified images exceed 0.8 confidence versus under 20 % for the
exact classifier; the reproduction checks that DA's confidence distribution
does not fall below the exact model's on the samples both classify correctly.
"""

from benchmarks.common import report_result, run_experiment


def test_fig12_confidence_cdf(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig12_confidence_cdf"), rounds=1, iterations=1
    )
    report_result(result)
    metrics = result.metrics
    assert metrics["approx_mean"] >= metrics["exact_mean"] - 0.05
    exact_high, approx_high = metrics["fractions"]["0.8"]
    assert approx_high >= exact_high - 0.1
