"""Figure 12: cumulative distribution of classification confidence.

Confidence = softmax score of the true class minus the runner-up score,
measured on a class-balanced set of clean samples.  The paper reports that
74.5 % of DA-classified images exceed 0.8 confidence versus under 20 % for the
exact classifier; the reproduction checks that DA's confidence distribution
does not fall below the exact model's on the samples both classify correctly.
"""

import numpy as np

from benchmarks.common import balanced_test_samples, digit_setup, report
from repro.core.confidence import compare_confidence
from repro.core.results import format_table


def run_experiment():
    exact_model, approx_model, split = digit_setup()
    images, labels = balanced_test_samples(split, per_class=10)
    both_correct = np.flatnonzero(
        (exact_model.predict(images) == labels) & (approx_model.predict(images) == labels)
    )
    comparison = compare_confidence(
        exact_model, approx_model, images[both_correct], labels[both_correct]
    )
    exact_mean, approx_mean = comparison.mean_confidence()
    rows = [("mean confidence", exact_mean, approx_mean)]
    for threshold in (0.5, 0.8, 0.9, 0.95):
        exact_frac, approx_frac = comparison.fraction_above(threshold)
        rows.append((f"fraction above {threshold}", exact_frac, approx_frac))
    table = format_table(["quantity", "exact classifier", "approximate classifier"], rows)
    return comparison, table


def test_fig12_confidence_cdf(benchmark):
    comparison, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("fig12_confidence_cdf", table)
    exact_mean, approx_mean = comparison.mean_confidence()
    assert approx_mean >= exact_mean - 0.05
    exact_high, approx_high = comparison.fraction_above(0.8)
    assert approx_high >= exact_high - 0.1
