"""Table 10: transferability success against HEAP-based vs Ax-FPM-based DA.

Design-space ablation: adversarial examples crafted on the exact LeNet are
replayed against DA built from the milder HEAP multiplier and from the
aggressive Ax-FPM.  The paper finds both reduce transfer, with Ax-FPM the
stronger defense overall.
"""

from benchmarks.common import (
    DIGIT_ATTACKS,
    N_ATTACK_SAMPLES_DIGITS,
    classifier,
    digit_setup,
    make_attack,
    report,
)
from repro.arith import HEAPMultiplier
from repro.core.evaluation import evaluate_transferability
from repro.core.results import format_table
from repro.nn.models import convert_to_approximate

TABLE10_ATTACKS = ("FGSM", "PGD", "JSMA", "C&W", "DF", "LSA")


def run_experiment():
    exact_model, ax_model, split = digit_setup()
    heap_model = convert_to_approximate(exact_model, multiplier=HEAPMultiplier())
    source = classifier(exact_model)
    targets = {
        "exact": classifier(exact_model),
        "heap": classifier(heap_model),
        "axfpm": classifier(ax_model),
    }
    rows = []
    results = {}
    for attack_name in TABLE10_ATTACKS:
        attack = make_attack(DIGIT_ATTACKS, attack_name)
        evaluation = evaluate_transferability(
            source,
            targets,
            attack,
            split.test.images,
            split.test.labels,
            max_samples=N_ATTACK_SAMPLES_DIGITS,
        )
        results[attack_name] = evaluation
        rows.append(
            (
                attack_name,
                f"{100 * evaluation.target_success_rates['exact']:.0f}%",
                f"{100 * evaluation.target_success_rates['heap']:.0f}%",
                f"{100 * evaluation.target_success_rates['axfpm']:.0f}%",
            )
        )
    table = format_table(["Attack", "Exact-based", "HEAP-based", "Ax-FPM-based"], rows)
    return results, table


def test_table10_heap_vs_axfpm_transferability(benchmark):
    results, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("table10_heap_transferability", table)
    mean_heap = sum(r.target_success_rates["heap"] for r in results.values()) / len(results)
    mean_ax = sum(r.target_success_rates["axfpm"] for r in results.values()) / len(results)
    # both approximate designs blunt transfer relative to the exact target (100 %),
    # and the aggressive Ax-FPM is at least as strong a defense as HEAP
    assert mean_ax < 1.0
    assert mean_ax <= mean_heap + 0.05
