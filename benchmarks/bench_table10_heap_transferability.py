"""Table 10: transferability success against HEAP-based vs Ax-FPM-based DA.

Design-space ablation: adversarial examples crafted on the exact LeNet are
replayed against DA built from the milder HEAP multiplier and from the
aggressive Ax-FPM.  The paper finds both reduce transfer, with Ax-FPM the
stronger defense overall.
"""

from benchmarks.common import report_result, run_experiment


def test_table10_heap_vs_axfpm_transferability(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table10_heap_transferability"), rounds=1, iterations=1
    )
    report_result(result)
    mean_heap = result.metrics["mean_target_success"]["heap"]
    mean_ax = result.metrics["mean_target_success"]["da"]
    # both approximate designs blunt transfer relative to the exact target (100 %),
    # and the aggressive Ax-FPM is at least as strong a defense as HEAP
    assert mean_ax < 1.0
    assert mean_ax <= mean_heap + 0.05
