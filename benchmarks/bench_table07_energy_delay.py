"""Table 7: normalised energy and delay of the complete floating point multipliers.

Paper values: Ax-FPM 0.487 energy / 0.29 delay, Bfloat16 0.4 / 0.4 (both
relative to the exact multiplier).  Our analytical gate-count model reproduces
the ranking and approximate magnitudes.
"""

from benchmarks.common import report
from repro.core.results import format_table
from repro.hw import energy_delay_table


def run_experiment():
    rows = energy_delay_table()
    table = format_table(["Multiplier", "Average energy", "Average delay"], rows)
    return rows, table


def test_table07_energy_delay(benchmark):
    rows, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("table07_energy_delay", table)
    by_name = {name: (energy, delay) for name, energy, delay in rows}
    assert by_name["Exact multiplier"] == (1.0, 1.0)
    ax_energy, ax_delay = by_name["Ax-FPM"]
    assert 0.3 < ax_energy < 0.7  # paper: 0.487
    assert 0.15 < ax_delay < 0.5  # paper: 0.29
    bf_energy, bf_delay = by_name["Bfloat16"]
    assert bf_energy < 1.0 and bf_delay < 1.0
