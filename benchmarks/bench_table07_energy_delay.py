"""Table 7: normalised energy and delay of the complete floating point multipliers.

Paper values: Ax-FPM 0.487 energy / 0.29 delay, Bfloat16 0.4 / 0.4 (both
relative to the exact multiplier).  Our analytical gate-count model reproduces
the ranking and approximate magnitudes.
"""

from benchmarks.common import report_result, run_experiment


def test_table07_energy_delay(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table07_energy_delay"), rounds=1, iterations=1
    )
    report_result(result)
    by_name = result.metrics["by_name"]
    assert by_name["Exact multiplier"] == {"energy": 1.0, "delay": 1.0}
    assert 0.3 < by_name["Ax-FPM"]["energy"] < 0.7  # paper: 0.487
    assert 0.15 < by_name["Ax-FPM"]["delay"] < 0.5  # paper: 0.29
    assert by_name["Bfloat16"]["energy"] < 1.0 and by_name["Bfloat16"]["delay"] < 1.0
