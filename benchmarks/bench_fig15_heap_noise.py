"""Figure 15: noise profile of Ax-FPM vs the HEAP multiplier for operands in [0, 1].

The HEAP design is less aggressive: smaller error magnitude, weaker data
dependence, and only a minority of products inflated.
"""

from benchmarks.common import report
from repro.arith import AxFPM, HEAPMultiplier, profile_multiplier
from repro.core.results import format_table


def run_experiment():
    ax = profile_multiplier(AxFPM(), n_samples=150_000, operand_range=(0.0, 1.0))
    heap = profile_multiplier(HEAPMultiplier(), n_samples=150_000, operand_range=(0.0, 1.0))
    rows = [
        ("Ax-FPM", ax.mred, ax.nmed, 100.0 * ax.fraction_magnitude_inflated, ax.max_abs_error),
        ("HEAP", heap.mred, heap.nmed, 100.0 * heap.fraction_magnitude_inflated, heap.max_abs_error),
    ]
    table = format_table(["multiplier", "MRED", "NMED", "% inflated", "max |error|"], rows)
    return ax, heap, table


def test_fig15_heap_vs_axfpm_noise(benchmark):
    ax, heap, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("fig15_heap_noise", table)
    assert heap.mred < ax.mred
    assert heap.fraction_magnitude_inflated < ax.fraction_magnitude_inflated
    assert heap.max_abs_error < ax.max_abs_error
