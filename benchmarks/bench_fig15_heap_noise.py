"""Figure 15: noise profile of Ax-FPM vs the HEAP multiplier for operands in [0, 1].

The HEAP design is less aggressive: smaller error magnitude, weaker data
dependence, and only a minority of products inflated.
"""

from benchmarks.common import report_result, run_experiment


def test_fig15_heap_vs_axfpm_noise(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("fig15_heap_noise"), rounds=1, iterations=1)
    report_result(result)
    ax = result.metrics["profiles"]["Ax-FPM"]
    heap = result.metrics["profiles"]["HEAP"]
    assert heap["mred"] < ax["mred"]
    assert heap["fraction_magnitude_inflated"] < ax["fraction_magnitude_inflated"]
    assert heap["max_abs_error"] < ax["max_abs_error"]
