"""Figure 4: exact vs approximate convolution response as a function of the
similarity between the input patch and the filter.

Six inputs of increasing similarity to a fixed filter are convolved with that
filter.  The approximate (Ax-FPM) convolution returns larger responses, and the
gap grows with the similarity -- the feature-highlighting effect that drives
the confidence enhancement of Figure 12.
"""

import numpy as np

from benchmarks.common import report
from repro.arith import AxFPM
from repro.core.results import format_table
from repro.nn.approx import ApproxConv2d
from repro.nn.layers import Conv2d


def run_experiment():
    rng = np.random.default_rng(0)
    kernel = rng.uniform(0.2, 0.9, size=(1, 1, 4, 4)).astype(np.float32)

    exact = Conv2d(1, 1, 4)
    exact.weight.value = kernel
    exact.bias.value = np.zeros(1, dtype=np.float32)
    approx = ApproxConv2d.from_exact(exact, multiplier=AxFPM())

    # six inputs, from least to most similar to the filter
    similarities = np.linspace(0.0, 1.0, 6)
    noise = rng.uniform(0.0, 1.0, size=(1, 1, 4, 4)).astype(np.float32)
    rows = []
    gaps = []
    for i, alpha in enumerate(similarities, start=1):
        image = (1 - alpha) * noise + alpha * (kernel / kernel.max())
        exact_response = float(exact.forward(image.astype(np.float32))[0, 0, 0, 0])
        approx_response = float(approx.forward(image.astype(np.float32))[0, 0, 0, 0])
        gaps.append(approx_response - exact_response)
        rows.append((f"image {i} (similarity {alpha:.1f})", exact_response, approx_response,
                     approx_response - exact_response))
    table = format_table(["input", "exact conv", "approx conv", "gap"], rows)
    return np.array(gaps), table


def test_fig04_approximate_convolution(benchmark):
    gaps, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("fig04_approx_convolution", table)
    # the approximate convolution inflates responses...
    assert np.all(gaps >= 0)
    # ...and the inflation grows with the input/filter similarity
    assert gaps[-1] > gaps[0]
