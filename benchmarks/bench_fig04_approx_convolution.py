"""Figure 4: exact vs approximate convolution response as a function of the
similarity between the input patch and the filter.

Six inputs of increasing similarity to a fixed filter are convolved with that
filter.  The approximate (Ax-FPM) convolution returns larger responses, and the
gap grows with the similarity -- the feature-highlighting effect that drives
the confidence enhancement of Figure 12.
"""

from benchmarks.common import report_result, run_experiment


def test_fig04_approximate_convolution(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig04_approx_convolution"), rounds=1, iterations=1
    )
    report_result(result)
    gaps = result.metrics["gaps"]
    # the approximate convolution inflates responses...
    assert all(gap >= 0 for gap in gaps)
    # ...and the inflation grows with the input/filter similarity
    assert gaps[-1] > gaps[0]
