"""Table 3: transferability attack success rates, AlexNet on the object dataset.

Same protocol as Table 2 but on the 3-channel CIFAR-10 substitute and the
compact AlexNet.  The paper reports 12-38 % transfer to the DA model.
"""

from benchmarks.common import (
    N_ATTACK_SAMPLES_OBJECTS,
    OBJECT_ATTACKS,
    classifier,
    make_attack,
    object_setup,
    report,
)
from repro.core.evaluation import evaluate_transferability
from repro.core.results import format_table


def run_experiment():
    exact_model, approx_model, split = object_setup()
    source = classifier(exact_model)
    targets = {"exact": classifier(exact_model), "approximate": classifier(approx_model)}

    rows = []
    results = {}
    for attack_name in OBJECT_ATTACKS:
        attack = make_attack(OBJECT_ATTACKS, attack_name)
        evaluation = evaluate_transferability(
            source,
            targets,
            attack,
            split.test.images,
            split.test.labels,
            max_samples=N_ATTACK_SAMPLES_OBJECTS,
        )
        results[attack_name] = evaluation
        rows.append(
            (
                attack_name,
                f"{100 * evaluation.target_success_rates['exact']:.0f}%",
                f"{100 * evaluation.target_success_rates['approximate']:.0f}%",
            )
        )
    table = format_table(["Attack method", "Exact AlexNet", "Approximate AlexNet"], rows)
    return results, table


def test_table03_transferability_objects(benchmark):
    results, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("table03_transferability_cifar", table)
    assert all(r.target_success_rates["exact"] == 1.0 for r in results.values())
    mean_da = sum(r.target_success_rates["approximate"] for r in results.values()) / len(results)
    assert mean_da < 0.95
