"""Table 3: transferability attack success rates, AlexNet on the object dataset.

Same protocol as Table 2 but on the 3-channel CIFAR-10 substitute and the
compact AlexNet.  The paper reports 12-38 % transfer to the DA model.
"""

from benchmarks.common import report_result, run_experiment


def test_table03_transferability_objects(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table03_transferability_cifar"), rounds=1, iterations=1
    )
    report_result(result)
    attacks = result.metrics["attacks"]
    assert all(cell["targets"]["exact"] == 1.0 for cell in attacks.values())
    assert result.metrics["mean_target_success"]["da"] < 0.95
