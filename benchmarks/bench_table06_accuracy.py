"""Table 6: clean accuracy of Float32, DA, fully quantised, weight-only
quantised and Bfloat16 models on both datasets.

The paper reports at most a 1 % drop for DA (97.93 -> 97.67 on MNIST,
81 -> 80 on CIFAR-10).  On the much smaller models of this reproduction the
DA drop is a few percent; the benchmark asserts the same qualitative claim:
the defense does not collapse clean accuracy.
"""

from benchmarks.common import classifier, digit_setup, object_variants, report
from repro.core.results import format_table
from repro.nn import evaluate_accuracy
from repro.nn.models import convert_to_bfloat16


def run_experiment():
    # digit (LeNet) column
    exact_digit, approx_digit, digit_split = digit_setup()
    digit_x, digit_y = digit_split.test.images[:200], digit_split.test.labels[:200]
    digit_acc = {
        "Float32": evaluate_accuracy(exact_digit, digit_x, digit_y),
        "Approximate (DA)": evaluate_accuracy(approx_digit, digit_x, digit_y),
        "Bfloat16": evaluate_accuracy(convert_to_bfloat16(exact_digit), digit_x, digit_y),
    }

    # object (AlexNet + DQ) column
    variants, object_split = object_variants()
    object_x, object_y = object_split.test.images[:150], object_split.test.labels[:150]
    object_acc = {
        "Float32": evaluate_accuracy(variants["exact"], object_x, object_y),
        "Approximate (DA)": evaluate_accuracy(variants["da"], object_x, object_y),
        "Fully quantized": evaluate_accuracy(variants["dq_full"], object_x, object_y),
        "Weight-only quantized": evaluate_accuracy(variants["dq_weight"], object_x, object_y),
        "Bfloat16": evaluate_accuracy(convert_to_bfloat16(variants["exact"]), object_x, object_y),
    }

    rows = []
    for name in ("Float32", "Approximate (DA)", "Fully quantized", "Weight-only quantized", "Bfloat16"):
        rows.append(
            (
                name,
                f"{100 * digit_acc[name]:.1f}%" if name in digit_acc else "-",
                f"{100 * object_acc[name]:.1f}%",
            )
        )
    table = format_table(["Used multiplier", "Digits (MNIST sub.)", "Objects (CIFAR-10 sub.)"], rows)
    return digit_acc, object_acc, table


def test_table06_accuracy(benchmark):
    digit_acc, object_acc, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("table06_accuracy", table)
    assert digit_acc["Float32"] > 0.9
    assert digit_acc["Approximate (DA)"] > digit_acc["Float32"] - 0.15
    assert abs(digit_acc["Bfloat16"] - digit_acc["Float32"]) < 0.02
    assert object_acc["Approximate (DA)"] > object_acc["Float32"] - 0.2
    assert abs(object_acc["Bfloat16"] - object_acc["Float32"]) < 0.02
