"""Table 6: clean accuracy of Float32, DA, fully quantised, weight-only
quantised and Bfloat16 models on both datasets.

The paper reports at most a 1 % drop for DA (97.93 -> 97.67 on MNIST,
81 -> 80 on CIFAR-10).  On the much smaller models of this reproduction the
DA drop is a few percent; the benchmark asserts the same qualitative claim:
the defense does not collapse clean accuracy.
"""

from benchmarks.common import report_result, run_experiment


def test_table06_accuracy(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("table06_accuracy"), rounds=1, iterations=1)
    report_result(result)
    digit_acc = result.metrics["accuracy"]["digits"]
    object_acc = result.metrics["accuracy"]["objects"]
    assert digit_acc["exact"] > 0.9
    assert digit_acc["da"] > digit_acc["exact"] - 0.15
    assert abs(digit_acc["bfloat16"] - digit_acc["exact"]) < 0.02
    assert object_acc["da"] > object_acc["exact"] - 0.2
    assert abs(object_acc["bfloat16"] - object_acc["exact"]) < 0.02
