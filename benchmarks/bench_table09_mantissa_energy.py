"""Table 9: normalised energy and delay of the bare 24x24 mantissa multipliers.

Paper values: HEAP 0.49 energy / 0.46 delay, Ax-FPM 0.395 / 0.235 relative to
the exact array multiplier.
"""

from benchmarks.common import report_result, run_experiment


def test_table09_mantissa_energy_delay(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table09_mantissa_energy"), rounds=1, iterations=1
    )
    report_result(result)
    by_name = result.metrics["by_name"]
    ax_energy, ax_delay = by_name["Ax-FPM"]["energy"], by_name["Ax-FPM"]["delay"]
    heap_energy, heap_delay = by_name["HEAP"]["energy"], by_name["HEAP"]["delay"]
    assert ax_energy < heap_energy < 1.0
    assert ax_delay < heap_delay <= 1.0
    assert 0.25 < ax_energy < 0.55  # paper: 0.395
    assert 0.15 < ax_delay < 0.4  # paper: 0.235
