"""Table 9: normalised energy and delay of the bare 24x24 mantissa multipliers.

Paper values: HEAP 0.49 energy / 0.46 delay, Ax-FPM 0.395 / 0.235 relative to
the exact array multiplier.
"""

from benchmarks.common import report
from repro.core.results import format_table
from repro.hw import mantissa_energy_delay_table


def run_experiment():
    rows = mantissa_energy_delay_table()
    table = format_table(["Multiplier", "Average energy", "Average delay"], rows)
    return rows, table


def test_table09_mantissa_energy_delay(benchmark):
    rows, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("table09_mantissa_energy", table)
    by_name = {name: (energy, delay) for name, energy, delay in rows}
    ax_energy, ax_delay = by_name["Ax-FPM"]
    heap_energy, heap_delay = by_name["HEAP"]
    assert ax_energy < heap_energy < 1.0
    assert ax_delay < heap_delay <= 1.0
    assert 0.25 < ax_energy < 0.55  # paper: 0.395
    assert 0.15 < ax_delay < 0.4  # paper: 0.235
