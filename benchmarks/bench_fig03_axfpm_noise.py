"""Figure 3: noise introduced by the Ax-FPM for operands in [-1, 1].

The paper's observations: the error is data dependent, inflates the product
magnitude in ~96 % of cases, and grows with the operand magnitude.
"""

from benchmarks.common import report_result, run_experiment


def test_fig03_axfpm_noise(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig03_axfpm_noise"), rounds=1, iterations=1
    )
    report_result(result)
    profile = result.metrics["profiles"]["Ax-FPM"]
    assert profile["fraction_magnitude_inflated"] > 0.9
    assert profile["error_magnitude_correlation"] > 0.3
    assert 0.2 < profile["mred"] < 0.6
