"""Figure 3: noise introduced by the Ax-FPM for operands in [-1, 1].

The paper's observations: the error is data dependent, inflates the product
magnitude in ~96 % of cases, and grows with the operand magnitude.
"""

from benchmarks.common import report
from repro.arith import AxFPM, profile_multiplier
from repro.core.results import format_table


def run_experiment():
    profile = profile_multiplier(AxFPM(), n_samples=200_000, operand_range=(-1.0, 1.0))
    rows = [
        ("samples", profile.n_samples),
        ("MRED", profile.mred),
        ("NMED", profile.nmed),
        ("mean |error|", profile.mean_abs_error),
        ("max |error|", profile.max_abs_error),
        ("% products inflated (paper: 96%)", 100.0 * profile.fraction_magnitude_inflated),
        ("corr(|x*y|, |error|)", profile.error_magnitude_correlation),
    ]
    return profile, format_table(["quantity", "value"], rows)


def test_fig03_axfpm_noise(benchmark):
    profile, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("fig03_axfpm_noise", table)
    assert profile.fraction_magnitude_inflated > 0.9
    assert profile.error_magnitude_correlation > 0.3
    assert 0.2 < profile.mred < 0.6
