"""Table 4: black-box attack success rates on the digit dataset.

The attacker trains a substitute model from the victim's query labels and
crafts adversarial examples on the substitute.  Two victims are compared: the
exact LeNet and the Defensive Approximation LeNet (each reverse engineered from
its own query responses).  The paper reports 0-27 % success against DA.
"""

from benchmarks.common import report_result, run_experiment


def test_table04_blackbox_digits(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table04_blackbox_mnist"), rounds=1, iterations=1
    )
    report_result(result)
    exact_mean = result.metrics["mean_victim_success"]["exact"]
    da_mean = result.metrics["mean_victim_success"]["da"]
    # the DA victim resists black-box attacks at least as well as the exact one
    assert da_mean <= exact_mean + 0.1
    assert da_mean < 0.9
