"""Table 4: black-box attack success rates on the digit dataset.

The attacker trains a substitute model from the victim's query labels and
crafts adversarial examples on the substitute.  Two victims are compared: the
exact LeNet and the Defensive Approximation LeNet (each reverse engineered from
its own query responses).  The paper reports 0-27 % success against DA.
"""

from benchmarks.common import (
    DIGIT_ATTACKS,
    N_ATTACK_SAMPLES_DIGITS,
    classifier,
    digit_setup,
    digit_substitute,
    make_attack,
    report,
)
from repro.core.evaluation import evaluate_black_box
from repro.core.results import format_table

#: gradient/score attacks used for the black-box table (decision-based attacks
#: query the victim directly and are covered by the white-box harness)
BLACKBOX_ATTACKS = ("FGSM", "PGD", "JSMA", "C&W", "DF", "LSA")


def run_experiment():
    exact_model, approx_model, split = digit_setup()
    victims = {
        "exact": (classifier(exact_model), classifier(digit_substitute("exact"))),
        "approximate": (classifier(approx_model), classifier(digit_substitute("da"))),
    }

    rows = []
    results = {}
    for attack_name in BLACKBOX_ATTACKS:
        row = [attack_name]
        for victim_name in ("exact", "approximate"):
            victim, substitute = victims[victim_name]
            attack = make_attack(DIGIT_ATTACKS, attack_name)
            evaluation = evaluate_black_box(
                victim,
                substitute,
                attack,
                split.test.images,
                split.test.labels,
                max_samples=N_ATTACK_SAMPLES_DIGITS,
            )
            results[(attack_name, victim_name)] = evaluation
            row.append(f"{100 * evaluation.victim_success_rate:.0f}%")
        rows.append(tuple(row))
    table = format_table(["Attack method", "Exact LeNet-5", "Approximate LeNet-5"], rows)
    return results, table


def test_table04_blackbox_digits(benchmark):
    results, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("table04_blackbox_mnist", table)
    exact_mean = sum(
        r.victim_success_rate for (a, v), r in results.items() if v == "exact"
    ) / len(BLACKBOX_ATTACKS)
    da_mean = sum(
        r.victim_success_rate for (a, v), r in results.items() if v == "approximate"
    ) / len(BLACKBOX_ATTACKS)
    # the DA victim resists black-box attacks at least as well as the exact one
    assert da_mean <= exact_mean + 0.1
    assert da_mean < 0.9
