"""Table 2: transferability attack success rates, LeNet-5 on the digit dataset.

Adversarial examples are crafted on the exact LeNet and replayed against the
Defensive Approximation (Ax-FPM) LeNet.  The paper reports 100 % success on the
exact model by construction and 1-28 % on the DA model; the reproduction checks
the same direction (DA success well below the exact model's 100 %).
"""

from benchmarks.common import (
    DIGIT_ATTACKS,
    N_ATTACK_SAMPLES_DIGITS,
    classifier,
    digit_setup,
    make_attack,
    report,
)
from repro.core.evaluation import evaluate_transferability
from repro.core.results import format_table


def run_experiment():
    exact_model, approx_model, split = digit_setup()
    source = classifier(exact_model)
    targets = {"exact": classifier(exact_model), "approximate": classifier(approx_model)}

    rows = []
    results = {}
    for attack_name in DIGIT_ATTACKS:
        attack = make_attack(DIGIT_ATTACKS, attack_name)
        evaluation = evaluate_transferability(
            source,
            targets,
            attack,
            split.test.images,
            split.test.labels,
            max_samples=N_ATTACK_SAMPLES_DIGITS,
        )
        results[attack_name] = evaluation
        rows.append(
            (
                attack_name,
                f"{100 * evaluation.target_success_rates['exact']:.0f}%",
                f"{100 * evaluation.target_success_rates['approximate']:.0f}%",
            )
        )
    table = format_table(["Attack method", "Exact LeNet-5", "Approximate LeNet-5"], rows)
    return results, table


def test_table02_transferability_digits(benchmark):
    results, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("table02_transferability_mnist", table)
    # examples that fool the source always fool the identical exact target
    assert all(r.target_success_rates["exact"] == 1.0 for r in results.values())
    # averaged over the attack suite, DA blocks a meaningful share of them
    mean_da = sum(r.target_success_rates["approximate"] for r in results.values()) / len(results)
    assert mean_da < 0.9
