"""Table 2: transferability attack success rates, LeNet-5 on the digit dataset.

Adversarial examples are crafted on the exact LeNet and replayed against the
Defensive Approximation (Ax-FPM) LeNet.  The paper reports 100 % success on the
exact model by construction and 1-28 % on the DA model; the reproduction checks
the same direction (DA success well below the exact model's 100 %).
"""

from benchmarks.common import report_result, run_experiment


def test_table02_transferability_digits(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table02_transferability_mnist"), rounds=1, iterations=1
    )
    report_result(result)
    attacks = result.metrics["attacks"]
    # examples that fool the source always fool the identical exact target
    assert all(cell["targets"]["exact"] == 1.0 for cell in attacks.values())
    # averaged over the attack suite, DA blocks a meaningful share of them
    assert result.metrics["mean_target_success"]["da"] < 0.9
