"""Figure 16: final convolution-layer feature maps under the exact multiplier,
Ax-FPM and HEAP.

The paper shows heat maps where Ax-FPM further highlights the important
features (larger activations at the feature locations) whereas HEAP lowers
their scores.  The benchmark reproduces the summary statistics of those maps:
mean and top-decile activation of the last convolution layer's output.
"""

from benchmarks.common import report_result, run_experiment


def test_fig16_heatmaps(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("fig16_heatmaps"), rounds=1, iterations=1)
    report_result(result)
    stats = result.metrics["stats"]
    # Ax-FPM highlights features: larger activations than the exact pipeline
    assert stats["da"]["p90"] >= stats["exact"]["p90"]
    # HEAP stays close to the exact map (its noise is mild)
    assert (
        abs(stats["heap"]["p90"] - stats["exact"]["p90"])
        <= abs(stats["da"]["p90"] - stats["exact"]["p90"]) + 1e-6
    )
