"""Figure 16: final convolution-layer feature maps under the exact multiplier,
Ax-FPM and HEAP.

The paper shows heat maps where Ax-FPM further highlights the important
features (larger activations at the feature locations) whereas HEAP lowers
their scores.  The benchmark reproduces the summary statistics of those maps:
mean and top-decile activation of the last convolution layer's output.
"""

import numpy as np

from benchmarks.common import digit_setup, report
from repro.arith import AxFPM, HEAPMultiplier
from repro.core.results import format_table
from repro.nn.layers import Conv2d, MaxPool2d, ReLU
from repro.nn.models import convert_to_approximate
from repro.nn.network import Sequential


def _last_conv_feature_map(model: Sequential, images: np.ndarray) -> np.ndarray:
    """Run the model up to (and including) its last convolution + activation."""
    last_conv_index = max(i for i, l in enumerate(model.layers) if isinstance(l, Conv2d))
    out = images
    for layer in model.layers[: last_conv_index + 2]:  # include the following ReLU
        out = layer.forward(out)
    return out


def run_experiment():
    exact_model, ax_model, split = digit_setup()
    heap_model = convert_to_approximate(exact_model, multiplier=HEAPMultiplier())
    images = split.test.images[:16]

    rows = []
    stats = {}
    for name, model in (("Exact", exact_model), ("Ax-FPM", ax_model), ("HEAP", heap_model)):
        fmap = _last_conv_feature_map(model, images)
        active = fmap[fmap > 0]
        mean_activation = float(active.mean()) if active.size else 0.0
        top_decile = float(np.percentile(fmap, 90))
        stats[name] = (mean_activation, top_decile)
        rows.append((name, mean_activation, top_decile, float(fmap.max())))
    table = format_table(["Multiplier", "Mean active response", "90th percentile", "Max"], rows)
    return stats, table


def test_fig16_heatmaps(benchmark):
    stats, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("fig16_heatmaps", table)
    # Ax-FPM highlights features: larger activations than the exact pipeline
    assert stats["Ax-FPM"][1] >= stats["Exact"][1]
    # HEAP stays close to the exact map (its noise is mild)
    assert abs(stats["HEAP"][1] - stats["Exact"][1]) <= abs(stats["Ax-FPM"][1] - stats["Exact"][1]) + 1e-6
