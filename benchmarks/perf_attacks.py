"""Attack-engine throughput benchmark: batched active-set rollouts vs the
pre-PR per-example attack loops.

For each of the six historically loop-based attacks (DeepFool, C&W, JSMA,
LSA, Boundary, HopSkipJump) this times

* the **pre-PR per-example path**: the frozen reference loops of
  ``tests/attack_reference.py`` driven one victim at a time against a
  classifier with the pre-PR gradient semantics (``zero_grad`` + parameter
  gradient accumulation), and
* the **batched engine**: the active-set rollouts of
  :mod:`repro.attacks.batched` advancing all victims per model call,

on the exact and the approximate (Defensive Approximation) victim at
shard/batch size 8, asserting **byte-identical adversarial examples and
identical query/gradient budgets** before recording any number.  The record
is written to ``BENCH_attacks.json`` at the repository root.

Interpreting the speedups: batching converts per-call fixed overhead
(layer dispatch, im2col, kernel setup, BPDA bookkeeping) from per-example
to per-batch, so the ceiling is the model-call amortisation ratio
``8 * t(batch 1) / t(batch 8)``, which the record also measures.  On a
single-core box that ceiling is ~3x for forwards and ~4x for gradients;
gradient-heavy attacks (C&W, DeepFool -- the wall-time dominators of the
paper's attack grids) approach it, while LSA/HopSkipJump already batched
their probes per example and gain less.  Run it directly::

    PYTHONPATH=src python benchmarks/perf_attacks.py [--smoke] [--out PATH]

``--smoke`` runs the parity assertions across batch sizes 1/3/8 with tiny
budgets (CI mode; exits non-zero on any divergence).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tests"))

from attack_reference import reference_perturb  # noqa: E402
from common import check_regression, load_baseline  # noqa: E402
from repro.attacks.base import Classifier  # noqa: E402
from repro.attacks.registry import create_attack  # noqa: E402
from repro.core.evaluation import select_correctly_classified  # noqa: E402
from repro.experiments.zoo import lenet_digits  # noqa: E402
from repro.nn.losses import CrossEntropyLoss  # noqa: E402
from repro.nn.models import model_variant  # noqa: E402
from repro.parallel.sharding import resolve_jobs  # noqa: E402

BATCH = 8  # the shard/batch size the pipeline runs attacks at
SEED = 20260729

#: per-attack budgets, scaled like the pipeline's fast profile
ATTACK_PARAMS = {
    "deepfool": dict(max_iterations=8),
    "cw": dict(max_iterations=25, num_const_steps=2),
    "jsma": dict(gamma=0.05),
    "lsa": dict(max_rounds=6, candidates_per_round=24, pixels_per_round=3),
    "boundary": dict(max_iterations=40, init_trials=20),
    "hsj": dict(max_iterations=3, init_trials=20, num_eval_samples=12, binary_search_steps=5),
}
SMOKE_PARAMS = {
    "deepfool": dict(max_iterations=3),
    "cw": dict(max_iterations=6, num_const_steps=1),
    "jsma": dict(gamma=0.02),
    "lsa": dict(max_rounds=2, candidates_per_round=8, pixels_per_round=2),
    "boundary": dict(max_iterations=6, init_trials=8),
    "hsj": dict(max_iterations=1, init_trials=8, num_eval_samples=6, binary_search_steps=3),
}
SEEDED = {"lsa", "boundary", "hsj"}

#: ``--check`` gates the batched-vs-loop speedup geomeans.  The floors are
#: deliberately loose (0.3x): CI runs ``--smoke``, whose tiny budgets shift
#: the per-attack mix relative to a full-profile baseline record, and the
#: gate only needs to catch the engine degenerating to per-example rollouts
#: (geomeans collapsing to ~1x), not a few percent of timing noise.
CHECK_METRICS = [
    ("geomean_speedup", lambda r: r["geomean_speedup"], 0.3),
    ("exact_geomean_speedup", lambda r: r["victims"]["exact"]["geomean_speedup"], 0.3),
    ("da_geomean_speedup", lambda r: r["victims"]["da"]["geomean_speedup"], 0.3),
]


class PrePRClassifier(Classifier):
    """The pre-PR gradient semantics: ``zero_grad`` + parameter-gradient
    accumulation per call.  Input gradients are bit-identical to the current
    facade (parameter gradients never feed them), so the baseline can be
    parity-checked against the batched engine while paying the historical
    per-call cost."""

    def loss_gradient(self, x, y):  # pragma: no cover - timing baseline
        self.gradient_count += len(x)
        x = np.asarray(x, dtype=np.float32)
        was_training = self.model.training
        self.model.set_training(False)
        try:
            self.model.zero_grad()
            logits = self.model.forward(x)
            criterion = CrossEntropyLoss()
            criterion.forward(logits, y)
            return self.model.backward(criterion.backward() * len(x))
        finally:
            self.model.set_training(was_training)

    def logits_gradient(self, x, grad_logits):
        self.gradient_count += len(x)
        x = np.asarray(x, dtype=np.float32)
        was_training = self.model.training
        self.model.set_training(False)
        try:
            self.model.zero_grad()
            self.model.forward(x)
            return self.model.backward(np.asarray(grad_logits, dtype=np.float32))
        finally:
            self.model.set_training(was_training)

    # pre-PR: no shared-forward gradient sweep, no cached backward -- every
    # vector-Jacobian product pays its own forward pass
    def gradient_sweep(self, x, cotangents):
        return [self.logits_gradient(x, np.array(ct, copy=True)) for ct in cotangents]

    def cached_logits_gradient(self, grad_logits):  # pragma: no cover
        raise NotImplementedError("pre-PR facade has no cached backward")

    def jacobian(self, x):
        n = len(x)
        n_classes = self.num_classes
        jac = np.zeros((n, n_classes) + x.shape[1:], dtype=np.float32)
        for k in range(n_classes):
            grad = np.zeros((n, n_classes), dtype=np.float32)
            grad[:, k] = 1.0
            jac[:, k] = self.logits_gradient(x, grad)
        return jac


def geomean(values):
    return float(np.exp(np.mean(np.log(np.asarray(values, dtype=np.float64)))))


def best_of(fn, repeats):
    best, out = np.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def call_amortization(classifier, x, y, repeats=20):
    """``batch * t(batch 1) / t(batch)`` for forward and gradient calls."""
    classifier.predict_logits(x)
    classifier.loss_gradient(x, y)  # warm kernels / weight tables
    f1, _ = best_of(lambda: classifier.predict_logits(x[:1]), repeats)
    f8, _ = best_of(lambda: classifier.predict_logits(x), repeats)
    g1, _ = best_of(lambda: classifier.loss_gradient(x[:1], y[:1]), repeats)
    g8, _ = best_of(lambda: classifier.loss_gradient(x, y), repeats)
    return {
        "forward": round(len(x) * f1 / f8, 2),
        "gradient": round(len(x) * g1 / g8, 2),
    }


def run_attack_pair(name, params, clf, baseline, x, y, repeats):
    """Time batched vs per-example loop; returns the record and parity flag."""
    kwargs = dict(params)
    if name in SEEDED:
        kwargs["seed"] = SEED

    def batched():
        attack = create_attack(name, **kwargs)
        clf.reset_counters()
        adversarial = attack.perturb(clf, x, y)
        return adversarial, clf.query_count, clf.gradient_count

    def loop():
        baseline.reset_counters()
        adversarial = reference_perturb(
            name, baseline, x, y, params=params, seed=SEED if name in SEEDED else 0
        )
        return adversarial, baseline.query_count, baseline.gradient_count

    t_batched, (adv_b, q_b, g_b) = best_of(batched, repeats)
    t_loop, (adv_l, q_l, g_l) = best_of(loop, repeats)
    identical = (
        adv_b.tobytes() == adv_l.tobytes() and (q_b, g_b) == (q_l, g_l)
    )
    return {
        "loop_seconds": round(t_loop, 4),
        "batched_seconds": round(t_batched, 4),
        "speedup": round(t_loop / t_batched, 2),
        "queries": q_b,
        "gradients": g_b,
        "bit_identical": bool(adv_b.tobytes() == adv_l.tobytes()),
        "budget_identical": bool((q_b, g_b) == (q_l, g_l)),
    }, identical


def smoke_parity(clf, x, y, params_by_attack):
    """Cross-batch-size parity sweep; returns the list of failures."""
    failures = []
    for name, params in params_by_attack.items():
        kwargs = dict(params)
        if name in SEEDED:
            kwargs["seed"] = SEED
        for batch in (1, 3, BATCH):
            attack = create_attack(name, **kwargs)
            clf.reset_counters()
            adv_b = attack.perturb(clf, x[:batch], y[:batch])
            counts_b = (clf.query_count, clf.gradient_count)
            clf.reset_counters()
            adv_l = reference_perturb(
                name, clf, x[:batch], y[:batch], params=params,
                seed=SEED if name in SEEDED else 0,
            )
            counts_l = (clf.query_count, clf.gradient_count)
            if adv_b.tobytes() != adv_l.tobytes() or counts_b != counts_l:
                failures.append(f"{name} @ batch {batch}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="parity-focused CI mode")
    parser.add_argument("--repeats", type=int, default=3, help="timing repetitions (best-of)")
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_attacks.json"),
        help="where to write the benchmark record",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare speedup geomeans against the recorded baseline and exit "
        "non-zero on regression",
    )
    args = parser.parse_args(argv)
    params_by_attack = SMOKE_PARAMS if args.smoke else ATTACK_PARAMS
    repeats = 1 if args.smoke else max(1, args.repeats)
    baseline_record = load_baseline(args.out) if args.check else {}

    model, split = lenet_digits(fast=True)
    probe = Classifier(model)
    victims = select_correctly_classified(
        probe, split.test.images, split.test.labels, BATCH
    )
    x = split.test.images[victims].astype(np.float32)
    y = split.test.labels[victims]

    record = {
        "benchmark": "batched_attack_engine",
        "batch_size": BATCH,
        "smoke": bool(args.smoke),
        "cpu_count": resolve_jobs("auto"),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "baseline": "pre-PR per-example loops (tests/attack_reference.py) on the "
        "pre-PR gradient path (zero_grad + parameter-gradient accumulation)",
        "victims": {},
        "parity_failures": [],
    }

    all_speedups = []
    for variant in ("exact", "da"):
        victim_model = model_variant(model, variant)
        clf = Classifier(victim_model)
        baseline = PrePRClassifier(victim_model)
        clf.predict_logits(x)
        clf.loss_gradient(x, y)  # warm LUTs / fused-kernel weight tables
        attacks = {}
        speedups = []
        for name, params in params_by_attack.items():
            entry, identical = run_attack_pair(name, params, clf, baseline, x, y, repeats)
            attacks[name] = entry
            speedups.append(entry["speedup"])
            if not identical:
                record["parity_failures"].append(f"{variant}/{name}")
        record["victims"][variant] = {
            "attacks": attacks,
            "geomean_speedup": round(geomean(speedups), 2),
            "call_amortization_ceiling": call_amortization(clf, x, y),
        }
        all_speedups.extend(speedups)
        if args.smoke:
            record["parity_failures"].extend(
                f"{variant}/{failure}" for failure in smoke_parity(clf, x, y, params_by_attack)
            )

    record["geomean_speedup"] = round(geomean(all_speedups), 2)
    record["note"] = (
        "Speedups are bounded by the model-call amortization ceiling recorded "
        "per victim (single-core BLAS: ~3x forward, ~4x gradient at batch 8). "
        "Gradient-call-dominated attacks (cw, deepfool, jsma) approach the "
        "ceiling; lsa/hsj already batched their probes per example pre-PR and "
        "gain the least."
    )

    out_path = Path(args.out)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\n# wrote {out_path}")
    if record["parity_failures"]:
        print(f"ERROR: parity failures: {record['parity_failures']}", file=sys.stderr)
        return 1
    if args.check:
        if baseline_record and baseline_record.get("smoke") != record["smoke"]:
            print(
                "# perf check: baseline profile differs (smoke="
                f"{baseline_record.get('smoke')} vs {record['smoke']}); floors "
                "are loose enough to compare across profiles"
            )
        if check_regression(baseline_record, record, CHECK_METRICS):
            print("ERROR: attack-engine performance regressed", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
