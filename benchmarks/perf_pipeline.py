"""Pipeline throughput benchmark: serial vs sharded multi-process execution.

Times the fast-profile :data:`~repro.pipeline.catalog.FAST_PERF_SUBSET`
workload (12 unique grid cells across 4 experiments) three ways and writes
``BENCH_pipeline.json`` at the repository root -- the seed of the pipeline's
performance trajectory across PRs:

* ``jobs=1``, cold cell cache -- the serial baseline (best of 2 trials);
* ``jobs=auto``, cold cell cache -- the parallel engine (identical results,
  bit for bit; best of 2 trials, so the recorded ``speedup`` compares two
  warmed-up runs instead of charging first-run warm-up to one side);
* ``jobs=auto``, warm cell cache -- every cell a hit, measuring plan +
  artifact-load overhead.

It also estimates the cost of the ``repro.obs`` instrumentation when tracing
is *off* (the shipped default): the per-call price of a disabled
``TRACER.span()`` times the number of spans one traced run of the workload
actually emits, as a fraction of the untraced wall time.  ``--check`` fails
if that estimate reaches 2% -- the guard that keeps the tracer's disabled
path an attribute read and an ``if``, never a context-manager allocation.
The same estimate is made for the ``repro.faults`` injection sites with
``REPRO_FAULTS`` unset, and for the remote artifact tier when no
``--remote`` peer is configured (the per-read price of the tiered store's
local-only delegation times the store reads one warm run issues), each
under the same 2% ``--check`` budget.

Zoo models are resolved (trained or disk-loaded) once up front so the
timings isolate pipeline execution, not model training.  Run it directly::

    PYTHONPATH=src python benchmarks/perf_pipeline.py [--jobs N] [--out PATH]

The speedup is hardware-dependent; the JSON records the machine's CPU count
next to the numbers.  On a single-core machine the parallel run measures
pure engine overhead.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from common import check_regression, load_baseline  # noqa: E402
from repro.parallel.sharding import resolve_jobs  # noqa: E402
from repro.pipeline import NONDETERMINISTIC_RESULT_FIELDS, Runner  # noqa: E402
from repro.pipeline.catalog import FAST_PERF_SUBSET  # noqa: E402

#: higher-is-better ratios compared by ``--check``; wall-clock absolutes are
#: machine-dependent and never gated.  The warm-cache ratio (cold serial wall
#: over warm rerun wall) is the one guarding the artifact store's read path:
#: a lock added to the hot path would collapse it immediately.
CHECK_METRICS = [
    ("parallel_speedup", lambda r: r["speedup"], 0.5),
    (
        "warm_cache_speedup",
        lambda r: r["runs"][0]["wall_seconds"] / max(r["runs"][2]["wall_seconds"], 1e-9),
        0.05,
    ),
]

#: absolute ceiling on the estimated tracing-off overhead fraction; unlike
#: the ratios above this is not baseline-relative -- 2% is the budget, full
#: stop (the measured estimate is typically under 0.1%)
MAX_TRACING_OFF_OVERHEAD = 0.02

#: same contract for the fault-injection sites: with ``REPRO_FAULTS`` unset
#: every ``FAULTS.should_inject`` call must stay an attribute read and a
#: ``return False``, and the sites a run crosses must cost under 2% of its
#: wall time in aggregate
MAX_FAULTS_OFF_OVERHEAD = 0.02

#: and for the remote artifact tier: a run with no ``--remote`` peer must not
#: pay for the tier's existence.  The estimate prices the worst plausible
#: wiring (every store read going through a remote-less ``TieredStore``
#: delegation instead of the plain local store) against a warm run's wall
MAX_REMOTE_OFF_OVERHEAD = 0.02


def _timed_run(jobs: int, cache_dir: Path, label: str, trials: int = 1) -> dict:
    """Run the workload ``trials`` times on a cold cache; report the best.

    Each cold trial gets a fresh cache directory, so none of them benefits
    from the previous trial's artifacts; best-of-N keeps one-off warm-up
    effects (allocator growth, first-touch page faults) out of the recorded
    ``speedup``.
    """
    best = None
    for trial in range(max(1, trials)):
        runner = Runner(fast=True, cache_dir=cache_dir / f"trial{trial}", jobs=jobs)
        start = time.perf_counter()
        results = runner.run_many(list(FAST_PERF_SUBSET))
        wall = time.perf_counter() - start
        payloads = []
        for result in results:
            payload = result.to_json()
            for field in NONDETERMINISTIC_RESULT_FIELDS:
                payload.pop(field, None)
            # compare canonical JSON text, not dicts: NaN != NaN would falsely
            # flag zero-success white-box cells as nondeterministic
            payloads.append(json.dumps(payload, sort_keys=True))
        record = {
            "label": label,
            "jobs": runner.jobs,
            "wall_seconds": round(wall, 3),
            "trials": max(1, trials),
            "cells_total": runner.telemetry.cells_total,
            "cache_hits": runner.telemetry.cache_hits,
            "cache_misses": runner.telemetry.cache_misses,
            "compute_seconds": round(runner.telemetry.compute_seconds, 3),
            "_deterministic_payload": payloads,
        }
        if best is None or record["wall_seconds"] < best["wall_seconds"]:
            best = record
    return best


def _warm_run(jobs: int, cache_dir: Path, label: str) -> dict:
    """Re-run the workload against an already-populated cache directory."""
    runner = Runner(fast=True, cache_dir=cache_dir, jobs=jobs)
    start = time.perf_counter()
    runner.run_many(list(FAST_PERF_SUBSET))
    return {
        "label": label,
        "jobs": runner.jobs,
        "wall_seconds": round(time.perf_counter() - start, 3),
        "cells_total": runner.telemetry.cells_total,
        "cache_hits": runner.telemetry.cache_hits,
        "cache_misses": runner.telemetry.cache_misses,
        "compute_seconds": round(runner.telemetry.compute_seconds, 3),
    }


def _tracing_overhead(tmp: Path, untraced_wall: float) -> dict:
    """Estimate the cost the instrumentation adds when ``REPRO_TRACE`` is off.

    Two measurements: the per-call price of a *disabled* ``TRACER.span()``
    (timed over enough iterations to resolve tens of nanoseconds), and the
    span count of one traced serial run of the workload (how many
    instrumented call sites the workload actually crosses).  Their product
    over the untraced wall time is the estimated overhead fraction a default
    (tracing-off) run pays for carrying the instrumentation.
    """
    from repro.obs import TRACER

    iterations = 200_000
    TRACER.configure(enabled=False)
    start = time.perf_counter()
    for _ in range(iterations):
        with TRACER.span("bench", cat="bench"):
            pass
    disabled_call_seconds = (time.perf_counter() - start) / iterations

    TRACER.configure(enabled=True, directory=tmp / "trace-spool")
    try:
        runner = Runner(fast=True, cache_dir=tmp / "traced", jobs=1)
        runner.run_many(list(FAST_PERF_SUBSET))
        spans = (runner.telemetry.trace or {}).get("spans", 0)
    finally:
        TRACER.configure(enabled=False)

    estimated = spans * disabled_call_seconds / max(untraced_wall, 1e-9)
    return {
        "disabled_span_ns": round(disabled_call_seconds * 1e9, 1),
        "spans_per_run": spans,
        "estimated_off_overhead": round(estimated, 6),
        "max_off_overhead": MAX_TRACING_OFF_OVERHEAD,
    }


def _faults_overhead(tmp: Path, untraced_wall: float) -> dict:
    """Estimate the cost of the fault-injection sites when they are disarmed.

    Mirrors :func:`_tracing_overhead`: the per-call price of a *disarmed*
    ``FAULTS.should_inject`` (one dict truthiness check) times the number of
    injection sites one run of the workload actually crosses, over the
    untimed serial wall.  The crossing count comes from arming every catalog
    point at probability zero -- enabled enough to count ``checks``, certain
    never to fire -- and reading the ``FAULT_STATS`` delta after a serial run.
    """
    from repro.faults import FAULT_POINTS, FAULT_STATS, FAULTS

    iterations = 200_000
    FAULTS.configure(None)
    start = time.perf_counter()
    for _ in range(iterations):
        FAULTS.should_inject("worker.crash", "bench")
    disabled_call_seconds = (time.perf_counter() - start) / iterations

    FAULTS.configure(",".join(f"{point}:0" for point in sorted(FAULT_POINTS)))
    mark = FAULT_STATS.snapshot()
    try:
        runner = Runner(fast=True, cache_dir=tmp / "faults-armed", jobs=1)
        runner.run_many(list(FAST_PERF_SUBSET))
        checks = FAULT_STATS.delta(mark).get("checks", 0)
    finally:
        FAULTS.configure(None)

    estimated = checks * disabled_call_seconds / max(untraced_wall, 1e-9)
    return {
        "disabled_check_ns": round(disabled_call_seconds * 1e9, 1),
        "site_crossings_per_run": checks,
        "estimated_off_overhead": round(estimated, 6),
        "max_off_overhead": MAX_FAULTS_OFF_OVERHEAD,
    }


def _remote_overhead(tmp: Path, warm_dir: Path) -> dict:
    """Estimate what the remote tier costs a run that never asked for it.

    A runner without ``--remote`` uses the plain local store, so the real
    overhead is a single ``is None`` check per run; this estimate prices the
    *worst plausible wiring* instead -- every cache read routed through a
    remote-less :class:`TieredStore` delegation.  The per-read delegation
    price (tiered get minus plain local get, timed over a hit artifact) is
    multiplied by the store reads one warm serial run actually issues
    (``STORE_STATS.reads`` delta) over that run's wall time.
    """
    from repro.store import STORE_STATS, ArtifactStore, TieredStore

    local = ArtifactStore(tmp / "remote-probe")
    digest = "d" * 16
    local.put("bench", digest, {"v": 1})
    tiered = TieredStore(local, remote=None)
    iterations = 20_000
    for store in (local, tiered):  # touch both paths before timing
        store.get("bench", digest)
    start = time.perf_counter()
    for _ in range(iterations):
        local.get("bench", digest)
    local_call = (time.perf_counter() - start) / iterations
    start = time.perf_counter()
    for _ in range(iterations):
        tiered.get("bench", digest)
    tiered_call = (time.perf_counter() - start) / iterations
    delegation_seconds = max(0.0, tiered_call - local_call)

    mark = STORE_STATS.snapshot()
    runner = Runner(fast=True, cache_dir=warm_dir, jobs=1)
    start = time.perf_counter()
    runner.run_many(list(FAST_PERF_SUBSET))
    warm_wall = time.perf_counter() - start
    reads = STORE_STATS.delta(mark).get("reads", 0)

    estimated = reads * delegation_seconds / max(warm_wall, 1e-9)
    return {
        "delegation_ns_per_read": round(delegation_seconds * 1e9, 1),
        "reads_per_warm_run": reads,
        "estimated_off_overhead": round(estimated, 6),
        "max_off_overhead": MAX_REMOTE_OFF_OVERHEAD,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", default="auto", help="parallel worker count (default: auto)")
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_pipeline.json"),
        help="where to write the benchmark record",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare speedup ratios against the previously recorded baseline "
        "and exit non-zero on regression",
    )
    args = parser.parse_args(argv)
    jobs = resolve_jobs(args.jobs)
    baseline = load_baseline(args.out) if args.check else {}

    # resolve (train or load) the zoo models and build the hardware variants /
    # multiplier LUTs outside the timed region, so every timed run -- serial
    # and parallel alike -- starts from the same process state and the
    # comparison isolates pipeline execution
    warm = Runner(fast=True)
    warm.zoo("lenet_digits")
    from repro.pipeline import ExperimentSpec

    warm_spec = ExperimentSpec(name="__warm__", kind="cell", model="lenet_digits")
    for variant in ("exact", "da", "heap", "bfloat16"):
        warm.resolve_variant(warm_spec, variant)

    with tempfile.TemporaryDirectory(prefix="repro-perf-") as tmp:
        tmp = Path(tmp)
        # trial labels are distinct even when --jobs resolves to 1 on a
        # single-core machine (the serial baseline vs the pool run used to
        # both read "jobs=1, cold cache"), and each side is best-of-N so the
        # recorded speedup is not first-run warm-up noise
        serial = _timed_run(1, tmp / "serial", "serial baseline (jobs=1), cold cache", trials=2)
        parallel = _timed_run(
            jobs, tmp / "parallel", f"pool run (jobs={jobs}), cold cache", trials=2
        )
        warm_cache = _warm_run(
            jobs, tmp / "parallel" / "trial1", f"pool rerun (jobs={jobs}), warm cache"
        )
        tracing = _tracing_overhead(tmp, serial["wall_seconds"])
        faults = _faults_overhead(tmp, serial["wall_seconds"])
        remote = _remote_overhead(tmp, tmp / "serial" / "trial1")

    identical = serial.pop("_deterministic_payload") == parallel.pop("_deterministic_payload")
    record = {
        "benchmark": "pipeline_parallel_execution",
        "workload": list(FAST_PERF_SUBSET),
        "fast_profile": True,
        "cpu_count": resolve_jobs("auto"),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "runs": [serial, parallel, warm_cache],
        "speedup": round(serial["wall_seconds"] / max(parallel["wall_seconds"], 1e-9), 3),
        "results_identical_across_jobs": identical,
        "tracing": tracing,
        "faults": faults,
        "remote": remote,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\n# wrote {out_path}")
    if not identical:
        print("ERROR: parallel results diverged from serial", file=sys.stderr)
        return 1
    if args.check and tracing["estimated_off_overhead"] >= MAX_TRACING_OFF_OVERHEAD:
        print(
            f"ERROR: tracing-off overhead estimate "
            f"{tracing['estimated_off_overhead']:.4f} exceeds the "
            f"{MAX_TRACING_OFF_OVERHEAD:.0%} budget",
            file=sys.stderr,
        )
        return 1
    if args.check and faults["estimated_off_overhead"] >= MAX_FAULTS_OFF_OVERHEAD:
        print(
            f"ERROR: faults-off overhead estimate "
            f"{faults['estimated_off_overhead']:.4f} exceeds the "
            f"{MAX_FAULTS_OFF_OVERHEAD:.0%} budget",
            file=sys.stderr,
        )
        return 1
    if args.check and remote["estimated_off_overhead"] >= MAX_REMOTE_OFF_OVERHEAD:
        print(
            f"ERROR: remote-off overhead estimate "
            f"{remote['estimated_off_overhead']:.4f} exceeds the "
            f"{MAX_REMOTE_OFF_OVERHEAD:.0%} budget",
            file=sys.stderr,
        )
        return 1
    if args.check and check_regression(baseline, record, CHECK_METRICS):
        print("ERROR: performance regressed against the recorded baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
