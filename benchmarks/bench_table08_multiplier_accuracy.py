"""Table 8: multiplier error metrics (MRED / NMED) and LeNet clean accuracy for
the exact multiplier, HEAP and Ax-FPM.

Paper values: HEAP MRED 0.12 / accuracy 97.86 %, Ax-FPM MRED 0.33 / 97.67 %,
against an exact baseline of 97.93 % -- i.e. even the aggressive Ax-FPM barely
dents clean accuracy.
"""

from benchmarks.common import report_result, run_experiment


def test_table08_multiplier_accuracy(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table08_multiplier_accuracy"), rounds=1, iterations=1
    )
    report_result(result)
    accuracies = result.metrics["accuracy"]
    profiles = result.metrics["profiles"]
    # multiplier-level error ordering
    assert profiles["HEAP"]["mred"] < profiles["Ax-FPM"]["mred"]
    # CNN-level accuracy ordering and tolerance: HEAP stays closest to exact,
    # Ax-FPM loses at most a modest amount despite its large MRED
    assert accuracies["Exact multiplier"] > 0.9
    assert accuracies["HEAP"] >= accuracies["Ax-FPM"] - 0.05
    assert accuracies["Ax-FPM"] > accuracies["Exact multiplier"] - 0.15
