"""Table 8: multiplier error metrics (MRED / NMED) and LeNet clean accuracy for
the exact multiplier, HEAP and Ax-FPM.

Paper values: HEAP MRED 0.12 / accuracy 97.86 %, Ax-FPM MRED 0.33 / 97.67 %,
against an exact baseline of 97.93 % -- i.e. even the aggressive Ax-FPM barely
dents clean accuracy.
"""

from benchmarks.common import classifier, digit_setup, report
from repro.arith import AxFPM, HEAPMultiplier, profile_multiplier
from repro.core.results import format_table
from repro.nn import evaluate_accuracy
from repro.nn.models import convert_to_approximate


def run_experiment():
    exact_model, approx_model, split = digit_setup()
    x, y = split.test.images[:200], split.test.labels[:200]

    heap_model = convert_to_approximate(exact_model, multiplier=HEAPMultiplier())
    ax_profile = profile_multiplier(AxFPM(), n_samples=100_000)
    heap_profile = profile_multiplier(HEAPMultiplier(), n_samples=100_000)

    accuracies = {
        "Exact multiplier": evaluate_accuracy(exact_model, x, y),
        "HEAP": evaluate_accuracy(heap_model, x, y),
        "Ax-FPM": evaluate_accuracy(approx_model, x, y),
    }
    rows = [
        ("Exact multiplier", f"{100 * accuracies['Exact multiplier']:.2f}%", 0.0, 0.0),
        ("HEAP", f"{100 * accuracies['HEAP']:.2f}%", heap_profile.mred, heap_profile.nmed),
        ("Ax-FPM", f"{100 * accuracies['Ax-FPM']:.2f}%", ax_profile.mred, ax_profile.nmed),
    ]
    table = format_table(["Multiplier", "CNN Accuracy", "MRED", "NMED"], rows)
    return accuracies, ax_profile, heap_profile, table


def test_table08_multiplier_accuracy(benchmark):
    accuracies, ax_profile, heap_profile, table = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    report("table08_multiplier_accuracy", table)
    # multiplier-level error ordering
    assert heap_profile.mred < ax_profile.mred
    # CNN-level accuracy ordering and tolerance: HEAP stays closest to exact,
    # Ax-FPM loses at most a modest amount despite its large MRED
    assert accuracies["Exact multiplier"] > 0.9
    assert accuracies["HEAP"] >= accuracies["Ax-FPM"] - 0.05
    assert accuracies["Ax-FPM"] > accuracies["Exact multiplier"] - 0.15
