"""Figure 13: noise introduced by bfloat16 multiplication for operands in [0, 1].

Contrast with Figure 3: the bfloat16 noise is orders of magnitude smaller,
mostly negative (truncation shrinks magnitudes) and input-independent -- which
is why bfloat16 brings no robustness benefit.
"""

from benchmarks.common import report
from repro.arith import AxFPM, Bfloat16Multiplier, profile_multiplier
from repro.core.results import format_table


def run_experiment():
    bf16 = profile_multiplier(Bfloat16Multiplier(), n_samples=200_000, operand_range=(0.0, 1.0))
    ax = profile_multiplier(AxFPM(), n_samples=200_000, operand_range=(0.0, 1.0))
    rows = [
        ("Bfloat16 MRED", bf16.mred),
        ("Bfloat16 mean error", bf16.mean_error),
        ("Bfloat16 % positive errors", 100.0 * bf16.fraction_positive_error),
        ("Bfloat16 max |error|", bf16.max_abs_error),
        ("Ax-FPM MRED (for contrast)", ax.mred),
        ("Ax-FPM max |error| (for contrast)", ax.max_abs_error),
    ]
    return bf16, ax, format_table(["quantity", "value"], rows)


def test_fig13_bfloat16_noise(benchmark):
    bf16, ax, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("fig13_bfloat16_noise", table)
    assert bf16.mred < 0.02
    assert bf16.fraction_positive_error < 0.1  # mostly negative noise
    assert ax.max_abs_error > 10 * bf16.max_abs_error  # orders of magnitude apart
