"""Figure 13: noise introduced by bfloat16 multiplication for operands in [0, 1].

Contrast with Figure 3: the bfloat16 noise is orders of magnitude smaller,
mostly negative (truncation shrinks magnitudes) and input-independent -- which
is why bfloat16 brings no robustness benefit.
"""

from benchmarks.common import report_result, run_experiment


def test_fig13_bfloat16_noise(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig13_bfloat16_noise"), rounds=1, iterations=1
    )
    report_result(result)
    bf16 = result.metrics["profiles"]["Bfloat16"]
    ax = result.metrics["profiles"]["Ax-FPM"]
    assert bf16["mred"] < 0.02
    assert bf16["fraction_positive_error"] < 0.1  # mostly negative noise
    assert ax["max_abs_error"] > 10 * bf16["max_abs_error"]  # orders of magnitude apart
