"""Figures 10 and 11: MSE and PSNR of white-box adversarial examples.

Same experiment as Figures 8/9, reported as image-quality degradation: DA
forces noisier adversarial examples (higher MSE, lower PSNR).  The paper
reports a PSNR gap of about 4 dB (C&W) and 7.8 dB (DeepFool).
"""

from benchmarks.common import report_result, run_experiment


def test_fig10_11_whitebox_psnr_mse(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig10_11_whitebox_psnr_mse"), rounds=1, iterations=1
    )
    report_result(result)
    for attack_name in ("DeepFool (Fig. 10)", "C&W (Fig. 11)"):
        exact_cell = result.metrics["attacks"][attack_name]["exact"]
        da_cell = result.metrics["attacks"][attack_name]["da"]
        if exact_cell["success_rate"] > 0 and da_cell["success_rate"] > 0:
            # adversarial examples against DA are at least as degraded
            assert da_cell["mean_mse"] >= 0.5 * exact_cell["mean_mse"]
            assert da_cell["mean_psnr"] <= exact_cell["mean_psnr"] + 3.0
