"""Figures 10 and 11: MSE and PSNR of white-box adversarial examples.

Same experiment as Figures 8/9, reported as image-quality degradation: DA
forces noisier adversarial examples (higher MSE, lower PSNR).  The paper
reports a PSNR gap of about 4 dB (C&W) and 7.8 dB (DeepFool).
"""

from benchmarks.common import N_WHITEBOX_SAMPLES, classifier, digit_setup, report
from repro.attacks import CarliniWagnerL2, DeepFool
from repro.core.evaluation import evaluate_white_box
from repro.core.results import format_table


def run_experiment():
    exact_model, approx_model, split = digit_setup()
    victims = {"exact": classifier(exact_model), "approximate": classifier(approx_model)}
    attacks = {
        "DeepFool (Fig. 10)": lambda: DeepFool(max_iterations=30),
        "C&W (Fig. 11)": lambda: CarliniWagnerL2(max_iterations=80),
    }
    rows = []
    results = {}
    for attack_name, make in attacks.items():
        for victim_name, victim in victims.items():
            evaluation = evaluate_white_box(
                victim,
                make(),
                split.test.images,
                split.test.labels,
                max_samples=N_WHITEBOX_SAMPLES,
                victim_name=victim_name,
            )
            results[(attack_name, victim_name)] = evaluation
            rows.append(
                (
                    attack_name,
                    victim_name,
                    evaluation.mean_mse,
                    evaluation.mean_psnr,
                )
            )
    table = format_table(["Attack", "Victim", "Mean MSE", "Mean PSNR (dB)"], rows)
    return results, table


def test_fig10_11_whitebox_psnr_mse(benchmark):
    results, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("fig10_11_whitebox_psnr_mse", table)
    for attack_name in ("DeepFool (Fig. 10)", "C&W (Fig. 11)"):
        exact_eval = results[(attack_name, "exact")]
        da_eval = results[(attack_name, "approximate")]
        if exact_eval.success_rate > 0 and da_eval.success_rate > 0:
            # adversarial examples against DA are at least as degraded
            assert da_eval.mean_mse >= 0.5 * exact_eval.mean_mse
            assert da_eval.mean_psnr <= exact_eval.mean_psnr + 3.0
