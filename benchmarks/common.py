"""Shared infrastructure for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper (see DESIGN.md
for the experiment index).  Models are pulled from the disk-cached zoo in
:mod:`repro.experiments.zoo`, so the first benchmark run trains them once and
later runs are fast.  Each harness prints the paper-style rows and also writes
them to ``benchmarks/results/<experiment>.txt``.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path
from typing import Dict

import numpy as np

from repro.attacks import create_attack
from repro.attacks.base import Classifier
from repro.core.substitute import train_substitute
from repro.experiments import CACHE_DIR, alexnet_objects, dq_models_objects, lenet_digits
from repro.nn.models import build_lenet5, convert_to_approximate, convert_to_bfloat16
from repro.nn.network import Sequential

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: how many correctly-classified test samples each attack gets to work with.
#: The paper uses larger pools; this keeps a full benchmark run in minutes on a
#: laptop while leaving the result *shapes* intact.
N_ATTACK_SAMPLES_DIGITS = 20
N_ATTACK_SAMPLES_OBJECTS = 10
N_WHITEBOX_SAMPLES = 6

#: attack parameterisation for the digit (LeNet) experiments
DIGIT_ATTACKS = {
    "FGSM": ("fgsm", {"epsilon": 0.1}),
    "PGD": ("pgd", {"epsilon": 0.1, "steps": 15}),
    "JSMA": ("jsma", {"theta": 0.8, "gamma": 0.08}),
    "C&W": ("cw", {"max_iterations": 80}),
    "DF": ("deepfool", {"max_iterations": 30}),
    "LSA": ("lsa", {"max_rounds": 12}),
    "BA": ("boundary", {"max_iterations": 80, "init_trials": 30}),
    "HSJ": ("hsj", {"max_iterations": 5, "num_eval_samples": 16}),
}

#: attack parameterisation for the object (AlexNet) experiments
OBJECT_ATTACKS = {
    "FGSM": ("fgsm", {"epsilon": 0.05}),
    "PGD": ("pgd", {"epsilon": 0.05, "steps": 12}),
    "JSMA": ("jsma", {"theta": 0.6, "gamma": 0.03}),
    "C&W": ("cw", {"max_iterations": 60}),
    "DF": ("deepfool", {"max_iterations": 25}),
    "LSA": ("lsa", {"max_rounds": 10}),
    "BA": ("boundary", {"max_iterations": 60, "init_trials": 30}),
    "HSJ": ("hsj", {"max_iterations": 4, "num_eval_samples": 12}),
}


def make_attack(table: Dict[str, tuple], name: str):
    """Instantiate one of the table's attacks."""
    registry_name, params = table[name]
    return create_attack(registry_name, **params)


def report(experiment: str, text: str) -> str:
    """Print a result block and persist it under ``benchmarks/results``."""
    banner = f"\n===== {experiment} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
    return banner


# --------------------------------------------------------------- model cache
@lru_cache(maxsize=None)
def digit_setup():
    """Exact + DA LeNet on the digit dataset, with its test split."""
    model, split = lenet_digits()
    approx = convert_to_approximate(model)
    return model, approx, split


@lru_cache(maxsize=None)
def object_setup():
    """Exact + DA AlexNet on the object dataset, with its test split."""
    model, split = alexnet_objects()
    approx = convert_to_approximate(model)
    return model, approx, split


@lru_cache(maxsize=None)
def object_variants():
    """All hardware/precision variants of the AlexNet object classifier."""
    model, approx, split = object_setup()
    dq, _ = dq_models_objects()
    return {
        "exact": model,
        "da": approx,
        "bfloat16": convert_to_bfloat16(model),
        "dq_full": dq["full"],
        "dq_weight": dq["weight"],
    }, split


@lru_cache(maxsize=None)
def digit_substitute(victim: str = "da") -> Sequential:
    """Black-box substitute model trained from the victim's query labels.

    The substitute's parameters are cached on disk next to the zoo models.
    """
    exact_model, approx_model, split = digit_setup()
    victim_model = approx_model if victim == "da" else exact_model
    cache_path = CACHE_DIR / f"substitute_{victim}_digits.npz"

    def build() -> Sequential:
        return build_lenet5(
            split.train.input_shape, conv_channels=(8, 16), fc_sizes=(64, 48), dropout=0.2, seed=11
        )

    substitute = build()
    if cache_path.exists():
        try:
            substitute.load(str(cache_path))
            return substitute
        except (KeyError, ValueError):
            cache_path.unlink()
    substitute = train_substitute(
        victim_model.predict,
        split.train.images[:1000],
        build_model=build,
        epochs=20,
        augmentation_rounds=1,
        seed=11,
    )
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    substitute.save(str(cache_path))
    return substitute


def classifier(model) -> Classifier:
    """Attack facade with the standard [0, 1] pixel range."""
    return Classifier(model)


def balanced_test_samples(split, per_class: int, seed: int = 0):
    """A class-balanced selection from the test split."""
    subset = split.test.sample_per_class(per_class, rng=np.random.default_rng(seed))
    return subset.images, subset.labels
