"""Shared infrastructure for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper by executing the
corresponding declarative spec from :mod:`repro.pipeline.catalog` through the
:class:`~repro.pipeline.runner.Runner`.  Models come from the disk-cached zoo
(so the first run trains them once) and grid cells are cached as JSON
artifacts (so re-runs are fast; set ``REPRO_PIPELINE_NO_CACHE=1`` to force
recomputation after behavioural changes).  Each harness persists the
paper-style text table and a machine-readable JSON result under
``benchmarks/results/`` -- the same schema ``python -m repro run`` writes --
so the performance / robustness trajectory can be tracked across PRs.

All 17 harnesses execute through one shared runner whose worker count comes
from the ``REPRO_JOBS`` environment variable (``auto`` -- every available
core -- by default): uncached grid cells shard across a process pool exactly
as under ``python -m repro run --jobs N``, and results are bit-for-bit
independent of the worker count.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.pipeline import ExperimentResult, Runner

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: one shared runner per pytest session; trained models are memoised
#: in-process and uncached cells spread over ``REPRO_JOBS`` workers
RUNNER = Runner(jobs=os.environ.get("REPRO_JOBS", "auto"))


def run_experiment(name: str) -> ExperimentResult:
    """Execute one catalog experiment through the pipeline."""
    return RUNNER.run(name)


def report(experiment: str, text: str) -> str:
    """Print a result block and persist its text table under ``benchmarks/results``."""
    banner = f"\n===== {experiment} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
    return banner


def report_result(result: ExperimentResult) -> str:
    """Print a pipeline result and persist ``<name>.txt`` + ``<name>.json``."""
    banner = report(result.name, result.table)
    result.write(RESULTS_DIR)  # overwrites the .txt with identical content + adds .json
    return banner


# ------------------------------------------------------- regression checking
def load_baseline(path) -> dict:
    """The previously recorded ``BENCH_*.json``, or ``{}`` if absent/corrupt.

    Call this *before* the harness overwrites its output file.
    """
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return {}


def check_regression(baseline: dict, current: dict, metrics) -> int:
    """Compare higher-is-better metrics against a recorded baseline.

    ``metrics`` is a list of ``(name, getter, min_ratio)``: the check fails
    when ``getter(current) < getter(baseline) * min_ratio``.  Only
    dimensionless ratios (speedups) are ever compared -- absolute wall-clock
    numbers are machine-dependent and meaningless across CI runners, which is
    also why ``min_ratio`` is generous rather than tight.

    A missing baseline (first run on a branch) or a metric absent from it
    (schema drift) is a pass with a note, never a failure: the gate catches
    regressions, it does not block schema evolution.  Returns the number of
    regressions (the harness exit code).
    """
    if not baseline:
        print("# perf check: no baseline recorded yet -- nothing to compare against")
        return 0
    failures = 0
    for name, getter, min_ratio in metrics:
        try:
            base = float(getter(baseline))
        except (KeyError, IndexError, TypeError, ValueError):
            print(f"# perf check: {name}: not in baseline (schema drift?) -- skipped")
            continue
        try:
            cur = float(getter(current))
        except (KeyError, IndexError, TypeError, ValueError):
            print(f"# perf check: {name}: MISSING from current record")
            failures += 1
            continue
        floor = base * min_ratio
        ok = cur >= floor
        verdict = "ok" if ok else "REGRESSION"
        print(
            f"# perf check: {name}: {cur:.3f} vs baseline {base:.3f} "
            f"(floor {floor:.3f} = {min_ratio:g}x) -- {verdict}"
        )
        failures += 0 if ok else 1
    return failures
