"""Approximate-GEMM kernel microbenchmark: fused engine vs the pre-kernel path.

Times the hot loop of the emulated Ax-FPM forward pass -- the contraction
``out[n,f,l] = sum_k M(cols[n,k,l], w[f,k])`` -- two ways, on the conv and
dense shapes of the paper's LeNet/AlexNet-style models:

* **old**: the historical implementation (decompose both operands per call,
  broadcast LUT fancy-indexing over the materialised ``(N, F, K, L)`` tensor,
  ``np.ldexp`` + ``np.where`` recomposition, ``sum(axis=2)``);
* **fused**: ``Multiplier.make_gemm_kernel()`` -- precomposed signed-product
  tables, cached weight decomposition, K-blocked in-place accumulation.

Every conv-shape comparison asserts **byte-identical** outputs (the dense
shapes assert byte-identity against the kernel contract -- the historical
dense path summed a contiguous axis, whose pairwise order the engine does not
reproduce).  Writes ``BENCH_kernels.json`` at the repository root::

    PYTHONPATH=src python benchmarks/perf_kernels.py [--repeats N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from common import check_regression, load_baseline  # noqa: E402
from repro.arith.fpm import AxFPM, HEAPMultiplier  # noqa: E402
from repro.arith.kernels import KERNEL_STATS  # noqa: E402

#: ``--check`` gates the per-multiplier fused-vs-old speedup geomeans.  0.5x
#: tolerates runner noise and BLAS/hardware variation; an accidental fallback
#: to the un-fused path (the ~6-7x ratios collapsing to ~1x) still fails.
CHECK_METRICS = [
    (
        f"{name}_{kind}_speedup_geomean",
        (lambda n, k: lambda r: r["multipliers"][n][f"{k}_speedup_geomean"])(name, kind),
        0.5,
    )
    for name in ("axfpm", "heap")
    for kind in ("conv", "dense")
]

#: (label, kind, N, F, K, L) -- conv shapes are the im2col geometries of the
#: repo's LeNet-5 (16x16 digits) and compact AlexNet (32x32 objects) layers at
#: the default batch_chunk; dense shapes are their fully connected heads
SHAPES = [
    ("lenet_conv1", "conv", 32, 6, 9, 196),
    ("lenet_conv2", "conv", 32, 16, 54, 25),
    ("alexnet_conv2", "conv", 16, 16, 72, 256),
    ("alexnet_conv4", "conv", 16, 24, 216, 64),
    ("lenet_fc1", "dense", 128, 120, 64, 1),
    ("alexnet_fc1", "dense", 128, 128, 256, 1),
]


def old_path(multiplier, cols, weight):
    """The pre-kernel forward: broadcast multiply + ``sum(axis=2)``."""
    if cols.shape[2] == 1:  # dense: (N, K) x (F, K), contiguous-axis sum
        products = multiplier.multiply(cols[:, :, 0][:, np.newaxis, :], weight[np.newaxis, :, :])
        return products.sum(axis=2, dtype=np.float32)[:, :, np.newaxis]
    products = multiplier.multiply(
        cols[:, np.newaxis, :, :], weight[np.newaxis, :, :, np.newaxis]
    )
    return products.sum(axis=2, dtype=np.float32)


def reference_fold(multiplier, cols, weight):
    """The kernel contract: multiply + identity-seeded float32 fold over K."""
    products = multiplier.multiply(
        cols[:, np.newaxis, :, :], weight[np.newaxis, :, :, np.newaxis]
    )
    out = np.zeros((cols.shape[0], weight.shape[0], cols.shape[2]), dtype=np.float32)
    for k in range(products.shape[2]):
        np.add(out, products[:, :, k, :], out=out)
    return out


def best_time(fn, repeats):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def bench_shape(multiplier, label, kind, n, f, k, l, repeats, rng):
    # L=1 is represented with a singleton spatial axis on the kernel side
    cols = rng.uniform(-1.0, 1.0, size=(n, k, l)).astype(np.float32)
    cols[rng.random(cols.shape) < 0.1] = 0.0  # post-ReLU sparsity
    weight = rng.normal(0.0, 0.2, size=(f, k)).astype(np.float32)
    kernel = multiplier.make_gemm_kernel()

    fused = kernel(cols, weight, weight_version=1)  # warm: LUTs, weight cache, buffers
    old = old_path(multiplier, cols, weight)
    if kind == "conv":
        identical = bool(np.array_equal(fused.view(np.uint32), old.view(np.uint32)))
    else:
        contract = reference_fold(multiplier, cols, weight)
        identical = bool(np.array_equal(fused.view(np.uint32), contract.view(np.uint32)))
        # sanity only: the historical dense path pairwise-summed a contiguous
        # axis, so it legitimately differs from the sequential fold by a few
        # low-order bits (amplified over large K)
        assert np.allclose(fused, old, rtol=1e-3, atol=1e-5), f"{label}: dense outputs drifted"

    t_old = best_time(lambda: old_path(multiplier, cols, weight), repeats)
    t_fused = best_time(lambda: kernel(cols, weight, weight_version=1), repeats)
    macs = n * f * k * l
    return {
        "shape": {"label": label, "kind": kind, "N": n, "F": f, "K": k, "L": l},
        "macs": macs,
        "old_seconds": round(t_old, 6),
        "fused_seconds": round(t_fused, 6),
        "old_mmacs_per_s": round(macs / t_old / 1e6, 2),
        "fused_mmacs_per_s": round(macs / t_fused / 1e6, 2),
        "speedup": round(t_old / t_fused, 3),
        "byte_identical": identical,
    }


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values)) if values else float("nan")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats (best-of)")
    parser.add_argument("--frac-bits", type=int, default=8, help="emulated fraction width")
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_kernels.json"), help="output JSON path"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare speedup geomeans against the recorded baseline and exit "
        "non-zero on regression",
    )
    args = parser.parse_args(argv)
    baseline = load_baseline(args.out) if args.check else {}

    rng = np.random.default_rng(0)
    record = {
        "benchmark": "fused_approximate_gemm_kernels",
        "frac_bits": args.frac_bits,
        "repeats": args.repeats,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "multipliers": {},
    }
    failed = False
    for name, multiplier in (
        ("axfpm", AxFPM(frac_bits=args.frac_bits)),
        ("heap", HEAPMultiplier(frac_bits=args.frac_bits)),
    ):
        rows = [
            bench_shape(multiplier, label, kind, n, f, k, l, args.repeats, rng)
            for label, kind, n, f, k, l in SHAPES
        ]
        conv = [r for r in rows if r["shape"]["kind"] == "conv"]
        dense = [r for r in rows if r["shape"]["kind"] == "dense"]
        parity = all(r["byte_identical"] for r in rows)
        failed |= not parity
        record["multipliers"][name] = {
            "shapes": rows,
            "parity": parity,
            "conv_speedup_min": round(min(r["speedup"] for r in conv), 3),
            "conv_speedup_geomean": round(geomean([r["speedup"] for r in conv]), 3),
            "dense_speedup_geomean": round(geomean([r["speedup"] for r in dense]), 3),
        }
    axfpm = record["multipliers"]["axfpm"]
    record["conv_speedup"] = axfpm["conv_speedup_geomean"]
    record["kernel_stats"] = KERNEL_STATS.snapshot()

    out_path = Path(args.out)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\n# wrote {out_path}")
    if failed:
        print("ERROR: fused kernel diverged from the reference path", file=sys.stderr)
        return 1
    if args.check and check_regression(baseline, record, CHECK_METRICS):
        print("ERROR: kernel performance regressed against the baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
