"""Table 5: Defensive Approximation vs Defensive Quantization (transferability).

Adversarial examples crafted on the exact AlexNet are replayed against the DA
model and against 4-bit DoReFa-quantised models (full and weight-only).  The
paper reports DA to be roughly twice as robust as DQ under FGSM, PGD and C&W.
"""

from benchmarks.common import report_result, run_experiment


def test_table05_da_vs_dq(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("table05_da_vs_dq"), rounds=1, iterations=1)
    report_result(result)
    attacks = result.metrics["attacks"]
    assert result.metrics["mean_target_success"]["da"] < 0.95
    # note: DQ targets are *different trained models*, so cross-model transfer to
    # them is naturally low; the DA comparison of interest is against the exact
    # target which shares the same parameters.
    assert all(cell["targets"]["exact"] == 1.0 for cell in attacks.values())
