"""Table 5: Defensive Approximation vs Defensive Quantization (transferability).

Adversarial examples crafted on the exact AlexNet are replayed against the DA
model and against 4-bit DoReFa-quantised models (full and weight-only).  The
paper reports DA to be roughly twice as robust as DQ under FGSM, PGD and C&W.
"""

from benchmarks.common import (
    N_ATTACK_SAMPLES_OBJECTS,
    OBJECT_ATTACKS,
    classifier,
    make_attack,
    object_variants,
    report,
)
from repro.core.evaluation import evaluate_transferability
from repro.core.results import format_table

TABLE5_ATTACKS = ("FGSM", "PGD", "C&W")


def run_experiment():
    variants, split = object_variants()
    source = classifier(variants["exact"])
    targets = {
        "exact": classifier(variants["exact"]),
        "da": classifier(variants["da"]),
        "dq_full": classifier(variants["dq_full"]),
        "dq_weight": classifier(variants["dq_weight"]),
    }
    rows = []
    results = {}
    for attack_name in TABLE5_ATTACKS:
        attack = make_attack(OBJECT_ATTACKS, attack_name)
        evaluation = evaluate_transferability(
            source,
            targets,
            attack,
            split.test.images,
            split.test.labels,
            max_samples=N_ATTACK_SAMPLES_OBJECTS,
        )
        results[attack_name] = evaluation
        rows.append(
            (
                attack_name,
                f"{100 * evaluation.target_success_rates['exact']:.0f}%",
                f"{100 * evaluation.target_success_rates['da']:.0f}%",
                f"{100 * evaluation.target_success_rates['dq_full']:.0f}%",
                f"{100 * evaluation.target_success_rates['dq_weight']:.0f}%",
            )
        )
    table = format_table(
        ["Attack method", "Exact", "DA", "DQ: Full", "DQ: Weight-only"], rows
    )
    return results, table


def test_table05_da_vs_dq(benchmark):
    results, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("table05_da_vs_dq", table)
    da_mean = sum(r.target_success_rates["da"] for r in results.values()) / len(results)
    assert da_mean < 0.95
    # note: DQ targets are *different trained models*, so cross-model transfer to
    # them is naturally low; the DA comparison of interest is against the exact
    # target which shares the same parameters.
    assert all(r.target_success_rates["exact"] == 1.0 for r in results.values())
