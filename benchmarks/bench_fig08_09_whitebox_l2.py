"""Figures 8 and 9: L2 perturbation required by white-box DeepFool and C&W
attacks against the exact and the Defensive Approximation LeNet.

The attacker has full access to the victim (BPDA gradients through the
approximate hardware emulation).  Robustness manifests as a larger perturbation
budget: the paper reports an average L2 increase of 5.12 (DeepFool) and 1.23
(C&W) when attacking DA.
"""

from benchmarks.common import report_result, run_experiment


def test_fig08_09_whitebox_l2(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig08_09_whitebox_l2"), rounds=1, iterations=1
    )
    report_result(result)
    for attack_name in ("DeepFool (Fig. 8)", "C&W (Fig. 9)"):
        exact_cell = result.metrics["attacks"][attack_name]["exact"]
        da_cell = result.metrics["attacks"][attack_name]["da"]
        if exact_cell["success_rate"] > 0 and da_cell["success_rate"] > 0:
            # fooling the DA classifier never needs *less* noise than the exact one
            assert da_cell["mean_l2"] >= 0.7 * exact_cell["mean_l2"]
