"""Figures 8 and 9: L2 perturbation required by white-box DeepFool and C&W
attacks against the exact and the Defensive Approximation LeNet.

The attacker has full access to the victim (BPDA gradients through the
approximate hardware emulation).  Robustness manifests as a larger perturbation
budget: the paper reports an average L2 increase of 5.12 (DeepFool) and 1.23
(C&W) when attacking DA.
"""

from benchmarks.common import N_WHITEBOX_SAMPLES, classifier, digit_setup, report
from repro.attacks import CarliniWagnerL2, DeepFool
from repro.core.evaluation import evaluate_white_box
from repro.core.results import format_table


def run_experiment():
    exact_model, approx_model, split = digit_setup()
    victims = {"exact": classifier(exact_model), "approximate": classifier(approx_model)}
    attacks = {
        "DeepFool (Fig. 8)": lambda: DeepFool(max_iterations=30),
        "C&W (Fig. 9)": lambda: CarliniWagnerL2(max_iterations=80),
    }
    rows = []
    results = {}
    for attack_name, make in attacks.items():
        for victim_name, victim in victims.items():
            evaluation = evaluate_white_box(
                victim,
                make(),
                split.test.images,
                split.test.labels,
                max_samples=N_WHITEBOX_SAMPLES,
                victim_name=victim_name,
            )
            results[(attack_name, victim_name)] = evaluation
            rows.append(
                (
                    attack_name,
                    victim_name,
                    f"{100 * evaluation.success_rate:.0f}%",
                    evaluation.mean_l2,
                )
            )
    table = format_table(["Attack", "Victim", "Success", "Mean L2"], rows)
    return results, table


def test_fig08_09_whitebox_l2(benchmark):
    results, table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("fig08_09_whitebox_l2", table)
    for attack_name in ("DeepFool (Fig. 8)", "C&W (Fig. 9)"):
        exact_eval = results[(attack_name, "exact")]
        da_eval = results[(attack_name, "approximate")]
        if exact_eval.success_rate > 0 and da_eval.success_rate > 0:
            # fooling the DA classifier never needs *less* noise than the exact one
            assert da_eval.mean_l2 >= 0.7 * exact_eval.mean_l2
