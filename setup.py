"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work on
offline machines whose pip/setuptools combination cannot use PEP 660
(no ``wheel`` package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Defensive Approximation: securing CNNs using approximate computing "
        "(ASPLOS 2021 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
